#include "sched/schedule.hpp"

#include <gtest/gtest.h>

namespace paraconv::sched {
namespace {

using graph::NodeId;
using graph::Task;
using graph::TaskGraph;
using graph::TaskKind;

/// A(1) -> B(1) with retiming r(A)=1, r(B)=0: distance 1, period 2.
struct Fixture {
  TaskGraph g{"expand"};
  KernelSchedule kernel;

  Fixture() {
    const NodeId a = g.add_task(Task{"A", TaskKind::kConvolution, TimeUnits{1}});
    const NodeId b = g.add_task(Task{"B", TaskKind::kConvolution, TimeUnits{1}});
    g.add_ipr(a, b, 1_KiB);
    kernel.period = TimeUnits{2};
    kernel.placement = {TaskPlacement{0, TimeUnits{0}},
                        TaskPlacement{1, TimeUnits{0}}};
    kernel.retiming = {1, 0};
    kernel.distance = {1};
    kernel.allocation = {pim::AllocSite::kCache};
  }
};

TEST(KernelScheduleTest, RMaxAndCachedCount) {
  const Fixture f;
  EXPECT_EQ(f.kernel.r_max(), 1);
  EXPECT_EQ(f.kernel.cached_edge_count(), 1U);
}

TEST(ExpandScheduleTest, WindowAssignment) {
  const Fixture f;
  const ExpandedSchedule x = expand_schedule(f.g, f.kernel, 3);
  ASSERT_EQ(x.instances.size(), 6U);
  // Task A (r=1) of iteration L runs in window L; task B (r=0) in window
  // L+1: A leads B by exactly the retiming distance.
  for (const TaskInstance& inst : x.instances) {
    if (inst.node.value == 0) {
      EXPECT_EQ(inst.window, inst.iteration);
    } else {
      EXPECT_EQ(inst.window, inst.iteration + 1);
    }
    EXPECT_EQ(inst.start.value,
              inst.window * 2 +
                  f.kernel.placement[inst.node.value].start.value);
  }
}

TEST(ExpandScheduleTest, PrologueAndMakespan) {
  const Fixture f;
  const ExpandedSchedule x = expand_schedule(f.g, f.kernel, 3);
  EXPECT_EQ(x.prologue.value, 2);  // R_max(1) * p(2)
  // Last instance: B of iteration 2 in window 3, start 6, finish 7.
  EXPECT_EQ(x.makespan.value, 7);
}

TEST(ExpandScheduleTest, InstancesSortedByStart) {
  const Fixture f;
  const ExpandedSchedule x = expand_schedule(f.g, f.kernel, 5);
  for (std::size_t i = 1; i < x.instances.size(); ++i) {
    EXPECT_LE(x.instances[i - 1].start, x.instances[i].start);
  }
}

TEST(ExpandScheduleTest, IterationCoverage) {
  const Fixture f;
  const ExpandedSchedule x = expand_schedule(f.g, f.kernel, 4);
  std::vector<int> per_iteration(4, 0);
  for (const TaskInstance& inst : x.instances) {
    ASSERT_GE(inst.iteration, 0);
    ASSERT_LT(inst.iteration, 4);
    ++per_iteration[static_cast<std::size_t>(inst.iteration)];
  }
  for (const int count : per_iteration) EXPECT_EQ(count, 2);
}

TEST(ExpandScheduleTest, ZeroRetimingHasNoPrologue) {
  Fixture f;
  f.kernel.retiming = {0, 0};
  f.kernel.distance = {0};
  f.kernel.placement[1].start = TimeUnits{1};
  const ExpandedSchedule x = expand_schedule(f.g, f.kernel, 2);
  EXPECT_EQ(x.prologue.value, 0);
  EXPECT_EQ(x.makespan.value, 4);  // B of iteration 1: start 3, finish 4
}

TEST(ExpandScheduleTest, RejectsInvalidArguments) {
  const Fixture f;
  EXPECT_THROW(expand_schedule(f.g, f.kernel, 0), ContractViolation);
  KernelSchedule broken = f.kernel;
  broken.placement.clear();
  EXPECT_THROW(expand_schedule(f.g, broken, 1), ContractViolation);
  broken = f.kernel;
  broken.period = TimeUnits{0};
  EXPECT_THROW(expand_schedule(f.g, broken, 1), ContractViolation);
}

}  // namespace
}  // namespace paraconv::sched
