#include "sched/modulo.hpp"

#include <gtest/gtest.h>

#include "core/para_conv.hpp"
#include "graph/paper_benchmarks.hpp"
#include "sched/bounds.hpp"
#include "sched/validator.hpp"

namespace paraconv::sched {
namespace {

void expect_resource_feasible(const graph::TaskGraph& g, const Packing& p,
                              int pe_count) {
  ASSERT_EQ(p.placement.size(), g.node_count());
  // Window containment.
  for (const graph::NodeId v : g.nodes()) {
    EXPECT_GE(p.placement[v.value].pe, 0);
    EXPECT_LT(p.placement[v.value].pe, pe_count);
    EXPECT_GE(p.placement[v.value].start, TimeUnits{0});
    EXPECT_LE(p.placement[v.value].start + g.task(v).exec_time, p.period);
  }
  // Exclusivity within the modulo window.
  for (const graph::NodeId a : g.nodes()) {
    for (const graph::NodeId b : g.nodes()) {
      if (a.value >= b.value) continue;
      if (p.placement[a.value].pe != p.placement[b.value].pe) continue;
      const TimeUnits a_end =
          p.placement[a.value].start + g.task(a).exec_time;
      const TimeUnits b_end =
          p.placement[b.value].start + g.task(b).exec_time;
      EXPECT_TRUE(a_end <= p.placement[b.value].start ||
                  b_end <= p.placement[a.value].start)
          << a.value << " vs " << b.value;
    }
  }
}

class ModuloTest : public testing::TestWithParam<const char*> {};

TEST_P(ModuloTest, FeasibleAndAtResourceBoundOrClose) {
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark(GetParam()));
  const pim::PimConfig config = pim::PimConfig::neurocube(32);
  const Packing p = pack_modulo(g, config);
  expect_resource_feasible(g, p, config.pe_count);
  const TimeUnits mii = period_lower_bound(g, config.pe_count);
  EXPECT_GE(p.period, mii);
  // Modulo scheduling should stay within a small factor of the bound.
  EXPECT_LE(p.period.value, 2 * mii.value);
}

TEST_P(ModuloTest, EndToEndValidAndLowRetiming) {
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark(GetParam()));
  const pim::PimConfig config = pim::PimConfig::neurocube(32);

  core::ParaConvOptions modulo;
  modulo.packer = core::PackerKind::kModulo;
  const core::ParaConvResult staggered =
      core::ParaConv(config, modulo).schedule(g);
  EXPECT_TRUE(sched::is_valid_kernel_schedule(g, staggered.kernel, config,
                                              config.total_cache_bytes()));

  // The staggered offsets shrink the prologue relative to the
  // dependency-oblivious default packer (the whole point of the method).
  const core::ParaConvResult plain = core::ParaConv(config).schedule(g);
  EXPECT_LT(staggered.metrics.r_max, plain.metrics.r_max);

  // And the bound argument: R_max lands within a small additive constant
  // of ceil(CP/p) - 1 (the greedy slot search and conservative eDRAM
  // latencies cost a few extra windows; the default packer overshoots the
  // bound by a multiple instead).
  const int bound = retiming_lower_bound(g, staggered.kernel.period);
  EXPECT_LE(staggered.metrics.r_max, bound + 6);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, ModuloTest,
                         testing::Values("flower", "character-2",
                                         "stock-predict", "shortest-path",
                                         "protein"),
                         [](const testing::TestParamInfo<const char*>& pi) {
                           std::string name = pi.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(ModuloTest, SerialChainOnOnePe) {
  graph::TaskGraph g("chain");
  graph::NodeId prev = g.add_task(
      {"t0", graph::TaskKind::kConvolution, TimeUnits{3}});
  for (int i = 1; i < 4; ++i) {
    const graph::NodeId cur = g.add_task(
        {"t" + std::to_string(i), graph::TaskKind::kConvolution,
         TimeUnits{3}});
    g.add_ipr(prev, cur, 1_KiB);
    prev = cur;
  }
  pim::PimConfig config = pim::PimConfig::neurocube(16);
  config.pe_count = 1;
  const Packing p = pack_modulo(g, config);
  // A single PE serializes all work; the greedy (non-backtracking) slot
  // search may additionally pad the window to satisfy hand-off latencies
  // modulo II.
  EXPECT_GE(p.period, g.total_work());
  EXPECT_LE(p.period.value, g.total_work().value + 8);
  expect_resource_feasible(g, p, 1);
}

TEST(ModuloTest, RejectsInvalidOptions) {
  const graph::TaskGraph g = graph::motivational_example();
  const pim::PimConfig config = pim::PimConfig::neurocube(4);
  ModuloOptions bad;
  bad.search_windows = 0;
  EXPECT_THROW(pack_modulo(g, config, bad), ContractViolation);
}

}  // namespace
}  // namespace paraconv::sched
