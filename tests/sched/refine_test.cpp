#include "sched/refine.hpp"

#include <gtest/gtest.h>

#include "core/para_conv.hpp"
#include "graph/generator.hpp"
#include "graph/paper_benchmarks.hpp"
#include "sched/validator.hpp"

namespace paraconv::sched {
namespace {

graph::TaskGraph bench(const char* name) {
  return graph::build_paper_benchmark(graph::paper_benchmark(name));
}

TEST(RefineTest, NeverWorsensPeriodOrDistanceSum) {
  for (const char* name : {"flower", "character-2", "stock-predict"}) {
    const graph::TaskGraph g = bench(name);
    const pim::PimConfig config = pim::PimConfig::neurocube(16);
    const Packing initial = pack_topological(g, 16);
    const RefineResult r = refine_packing(g, initial, config);
    EXPECT_LE(r.packing.period, initial.period) << name;
    EXPECT_LE(r.distance_sum_after, r.distance_sum_before) << name;
  }
}

TEST(RefineTest, ZeroStepsIsIdentityCompaction) {
  const graph::TaskGraph g = bench("car");
  const pim::PimConfig config = pim::PimConfig::neurocube(16);
  const Packing initial = pack_topological(g, 16);
  RefineOptions options;
  options.max_steps = 0;
  const RefineResult r = refine_packing(g, initial, config, options);
  EXPECT_EQ(r.accepted_moves, 0);
  EXPECT_EQ(r.distance_sum_after, r.distance_sum_before);
  EXPECT_EQ(r.packing.period, initial.period);
}

TEST(RefineTest, RefinedPackingStaysResourceFeasible) {
  const graph::TaskGraph g = bench("character-1");
  const pim::PimConfig config = pim::PimConfig::neurocube(16);
  RefineOptions options;
  options.max_steps = 512;
  const RefineResult r =
      refine_packing(g, pack_topological(g, 16), config, options);

  // Tasks on the same PE must not overlap and must fit the period.
  std::vector<TimeUnits> load(16, TimeUnits{0});
  for (const graph::NodeId v : g.nodes()) {
    const TaskPlacement& p = r.packing.placement[v.value];
    ASSERT_GE(p.pe, 0);
    ASSERT_LT(p.pe, 16);
    EXPECT_EQ(p.start, load[static_cast<std::size_t>(p.pe)]);  // compacted
    load[static_cast<std::size_t>(p.pe)] += g.task(v).exec_time;
  }
  for (const TimeUnits l : load) EXPECT_LE(l, r.packing.period);
}

TEST(RefineTest, DeterministicForFixedSeed) {
  const graph::TaskGraph g = bench("flower");
  const pim::PimConfig config = pim::PimConfig::neurocube(16);
  const Packing initial = pack_topological(g, 16);
  const RefineResult a = refine_packing(g, initial, config);
  const RefineResult b = refine_packing(g, initial, config);
  EXPECT_EQ(a.distance_sum_after, b.distance_sum_after);
  EXPECT_EQ(a.accepted_moves, b.accepted_moves);
}

TEST(RefineTest, EndToEndThroughParaConvStaysValid) {
  const graph::TaskGraph g = bench("stock-predict");
  const pim::PimConfig config = pim::PimConfig::neurocube(32);
  core::ParaConvOptions options;
  options.refine_steps = 256;
  const core::ParaConvResult refined =
      core::ParaConv(config, options).schedule(g);
  EXPECT_TRUE(sched::is_valid_kernel_schedule(g, refined.kernel, config,
                                              config.total_cache_bytes()));

  const core::ParaConvResult plain = core::ParaConv(config).schedule(g);
  EXPECT_LE(refined.metrics.iteration_time, plain.metrics.iteration_time);
}

TEST(RefineTest, RejectsInvalidArguments) {
  const graph::TaskGraph g = bench("cat");
  const pim::PimConfig config = pim::PimConfig::neurocube(16);
  RefineOptions options;
  options.max_steps = -1;
  EXPECT_THROW(refine_packing(g, pack_topological(g, 16), config, options),
               ContractViolation);
  EXPECT_THROW(refine_packing(g, Packing{}, config), ContractViolation);
}

}  // namespace
}  // namespace paraconv::sched
