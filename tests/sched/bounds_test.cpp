#include "sched/bounds.hpp"

#include <gtest/gtest.h>

#include "core/para_conv.hpp"
#include "graph/algorithms.hpp"
#include "graph/paper_benchmarks.hpp"

namespace paraconv::sched {
namespace {

TEST(BoundsTest, PeriodBoundHandValues) {
  const graph::TaskGraph g = graph::motivational_example();
  // Five unit tasks: W = 5, c_max = 1.
  EXPECT_EQ(period_lower_bound(g, 4).value, 2);   // ceil(5/4)
  EXPECT_EQ(period_lower_bound(g, 5).value, 1);
  EXPECT_EQ(period_lower_bound(g, 1).value, 5);
}

TEST(BoundsTest, RetimingBoundHandValues) {
  const graph::TaskGraph g = graph::motivational_example();
  // Critical path = 3 (three unit-time levels).
  EXPECT_EQ(graph::critical_path_length(g).value, 3);
  EXPECT_EQ(retiming_lower_bound(g, TimeUnits{1}), 2);
  EXPECT_EQ(retiming_lower_bound(g, TimeUnits{2}), 1);
  EXPECT_EQ(retiming_lower_bound(g, TimeUnits{3}), 0);
  EXPECT_EQ(retiming_lower_bound(g, TimeUnits{100}), 0);
}

struct Cell {
  const char* benchmark;
  int pe_count;
};

class BoundsPropertyTest : public testing::TestWithParam<Cell> {};

TEST_P(BoundsPropertyTest, EveryEmittedScheduleRespectsBothBounds) {
  const graph::TaskGraph g = graph::build_paper_benchmark(
      graph::paper_benchmark(GetParam().benchmark));
  const pim::PimConfig config = pim::PimConfig::neurocube(GetParam().pe_count);

  for (const core::PackerKind packer :
       {core::PackerKind::kTopological, core::PackerKind::kLpt}) {
    core::ParaConvOptions options;
    options.packer = packer;
    const core::ParaConvResult r =
        core::ParaConv(config, options).schedule(g);
    EXPECT_GE(r.kernel.period, period_lower_bound(g, config.pe_count));
    EXPECT_GE(r.metrics.r_max, retiming_lower_bound(g, r.kernel.period));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BoundsPropertyTest,
    testing::Values(Cell{"cat", 16}, Cell{"flower", 64},
                    Cell{"character-2", 32}, Cell{"shortest-path", 16},
                    Cell{"protein", 64}),
    [](const testing::TestParamInfo<Cell>& pi) {
      std::string name = std::string(pi.param.benchmark) + "_" +
                         std::to_string(pi.param.pe_count);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(BoundsTest, RejectsInvalidArguments) {
  const graph::TaskGraph g = graph::motivational_example();
  EXPECT_THROW(period_lower_bound(g, 0), ContractViolation);
  EXPECT_THROW(retiming_lower_bound(g, TimeUnits{0}), ContractViolation);
}

}  // namespace
}  // namespace paraconv::sched
