#include "dse/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

namespace paraconv::dse {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  constexpr int kTasks = 1000;
  std::atomic<int> done{0};
  {
    ThreadPool pool({.threads = 4});
    std::vector<std::future<void>> futures;
    futures.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i) {
      futures.push_back(pool.async([&done] {
        done.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    for (auto& future : futures) future.get();
    EXPECT_EQ(pool.stats().executed, static_cast<std::uint64_t>(kTasks));
  }
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, AsyncReturnsValues) {
  ThreadPool pool({.threads = 2});
  std::future<int> a = pool.async([] { return 40; });
  std::future<int> b = pool.async([] { return 2; });
  EXPECT_EQ(a.get() + b.get(), 42);
}

TEST(ThreadPoolTest, SingleWorkerPoolCompletes) {
  ThreadPool pool({.threads = 1});
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.async([&done] { ++done; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool({.threads = 2});
  std::future<int> future =
      pool.async([]() -> int { throw std::runtime_error("cell failed"); });
  try {
    future.get();
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "cell failed");
  }
  // The pool survives a throwing task.
  EXPECT_EQ(pool.async([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, NestedSubmissionsFromWorkersComplete) {
  std::atomic<int> done{0};
  ThreadPool pool({.threads = 4});
  std::vector<std::future<void>> inner(8);
  std::vector<std::future<void>> outer;
  for (std::size_t i = 0; i < inner.size(); ++i) {
    outer.push_back(pool.async([&pool, &inner, &done, i] {
      // Submitting from a worker goes to its own deque; idle workers
      // steal it — the code path the pool exists for.
      inner[i] = pool.async([&done] {
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }));
  }
  for (auto& future : outer) future.get();
  for (auto& future : inner) future.get();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, IdleWorkerStealsFromBlockedWorkersDeque) {
  ThreadPool pool({.threads = 2});
  std::atomic<bool> blocker_running{false};
  std::atomic<bool> release{false};
  std::future<void> blocker = pool.async([&] {
    blocker_running.store(true);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  while (!blocker_running.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // With one worker pinned, the round-robin dealer still lands half of
  // these in the blocked worker's deque; the free worker can only finish
  // them by stealing.
  constexpr int kTasks = 100;
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.async([&done] {
      done.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& future : futures) future.get();

  release.store(true);
  blocker.get();
  EXPECT_EQ(done.load(), kTasks);
  EXPECT_GT(pool.stats().stolen, 0U);
  EXPECT_GE(pool.stats().executed, static_cast<std::uint64_t>(kTasks + 1));
}

TEST(ThreadPoolTest, DestructionMidQueueDoesNotDeadlock) {
  std::atomic<int> done{0};
  {
    ThreadPool pool({.threads = 2});
    for (int i = 0; i < 200; ++i) {
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destroy with most of the queue still pending: the pool must stop
    // after the in-flight tasks, not drain 200 ms of work.
  }
  EXPECT_LE(done.load(), 200);
}

TEST(ThreadPoolTest, PendingAsyncFutureBreaksOnDestruction) {
  std::future<void> blocked_future;
  std::future<void> pending_future;
  std::atomic<bool> blocker_running{false};
  std::atomic<bool> release{false};
  {
    ThreadPool pool({.threads = 1});
    blocked_future = pool.async([&] {
      blocker_running.store(true);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    // Wait until the worker holds the blocker; destroying the pool earlier
    // would discard it while still queued and break blocked_future too.
    while (!blocker_running.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    pending_future = pool.async([] {});  // stuck behind the blocker
    release.store(true);
  }
  blocked_future.get();
  // The pending task either ran just before stop was observed or was
  // discarded; discarding must surface as broken_promise, never a hang.
  try {
    pending_future.get();
  } catch (const std::future_error& e) {
    EXPECT_EQ(e.code(), std::future_errc::broken_promise);
  }
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
  ThreadPool pool;  // default: one worker per hardware thread
  EXPECT_EQ(pool.thread_count(), ThreadPool::hardware_threads());
}

}  // namespace
}  // namespace paraconv::dse
