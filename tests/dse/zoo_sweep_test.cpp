// Workload-zoo sweep contracts:
//  - a batched zoo sweep (batch in {1, 4}) is byte-identical to the
//    committed golden fixtures (CSV and JSON) and deterministic across job
//    counts, with the conditional `batch` column at its pinned position;
//  - every shipped zoo entry evaluates validator-clean at batch 1 and 4;
//  - the checkpoint codec round-trips the `batch` segment (alone and next
//    to the bank segment) and the fingerprint separates batched grids
//    without invalidating batch-free ones.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cnn/workload.hpp"
#include "dse/checkpoint.hpp"
#include "dse/frontier.hpp"
#include "dse/sweep.hpp"

namespace paraconv::dse {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

GridSpec zoo_spec() {
  // Mirrors the CLI invocation the fixtures were generated with:
  //   sweep --workload resnet18_basic,deepbench_conv --batch 1,4
  //         --pe-counts 16,32 --allocators dp --packers topo
  //         --iterations 20 --seed 7
  GridSpec spec;
  for (const char* name : {"resnet18_basic", "deepbench_conv"}) {
    const cnn::Workload workload = cnn::zoo_workload(name);
    for (const int batch : {1, 4}) {
      spec.cases.push_back({workload.net.name(),
                            cnn::lower_workload(workload, batch), batch});
    }
  }
  spec.configs = {pim::PimConfig::neurocube(16),
                  pim::PimConfig::neurocube(32)};
  spec.packers = {core::PackerKind::kTopological};
  spec.allocators = {core::AllocatorKind::kKnapsackDp};
  spec.iterations = 20;
  return spec;
}

TEST(ZooSweepTest, BatchedSweepMatchesGoldenFixturesByteForByte) {
  SweepOptions options;
  options.seed = 7;
  const SweepResult sweep = run_sweep(zoo_spec(), options);

  std::ostringstream csv;
  write_sweep_csv(csv, sweep);
  EXPECT_EQ(csv.str(), read_file(std::string(PARACONV_DSE_GOLDEN_DIR) +
                                 "/sweep_zoo.csv"));

  const std::string json = sweep_to_json(sweep).dump(/*pretty=*/true) + "\n";
  EXPECT_EQ(json, read_file(std::string(PARACONV_DSE_GOLDEN_DIR) +
                            "/sweep_zoo.json"));
}

TEST(ZooSweepTest, BatchedSweepIsDeterministicAcrossJobs) {
  const GridSpec spec = zoo_spec();
  std::string csv_by_jobs[2];
  for (int i = 0; i < 2; ++i) {
    SweepOptions options;
    options.seed = 7;
    options.jobs = i == 0 ? 1 : 4;
    const SweepResult sweep = run_sweep(spec, options);
    std::ostringstream csv;
    write_sweep_csv(csv, sweep);
    csv_by_jobs[i] = csv.str();
  }
  EXPECT_EQ(csv_by_jobs[0], csv_by_jobs[1]);
  // The all-or-nothing batch column sits at its pinned position (after
  // `benchmark`) whenever any case is batched.
  EXPECT_EQ(csv_by_jobs[0].rfind("index,benchmark,batch,", 0), 0u)
      << csv_by_jobs[0].substr(0, 80);
}

// The zoo acceptance gate: every shipped entry schedules validator-clean
// (CellStatus::kOk means packing, retiming, allocation and the schedule
// validator all passed) at batch 1 and batch 4.
TEST(ZooSweepTest, EveryZooEntryEvaluatesValidatorClean) {
  for (const std::string& name : cnn::zoo_workload_names()) {
    const cnn::Workload workload = cnn::zoo_workload(name);
    for (const int batch : {1, 4}) {
      const SweepCase sweep_case{workload.net.name(),
                                 cnn::lower_workload(workload, batch), batch};
      const CellResult cell = evaluate_cell(
          sweep_case, pim::PimConfig::neurocube(16),
          core::PackerKind::kTopological, core::AllocatorKind::kKnapsackDp,
          /*iterations=*/20, /*refine_steps=*/0, /*seed=*/7,
          /*with_baseline=*/true, /*cache=*/nullptr);
      EXPECT_EQ(cell.status, CellStatus::kOk)
          << name << " batch " << batch << ": " << cell.error_message;
      EXPECT_EQ(cell.batch, batch);
      EXPECT_GT(cell.para.iteration_time.value, 0) << name;
    }
  }
}

TEST(ZooSweepTest, CheckpointRoundTripsBatchSegment) {
  CellResult cell;
  cell.index = 5;
  cell.status = CellStatus::kOk;
  cell.energy_uj = 2.5;
  cell.batch = 4;

  const std::string record = encode_cell_record(cell);
  EXPECT_NE(record.find(" batch 4"), std::string::npos) << record;
  const std::optional<CellResult> decoded = decode_cell_record(record);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->batch, 4);

  // A batch-1 record carries no segment (legacy bytes) and decodes to 1.
  cell.batch = 1;
  const std::string legacy = encode_cell_record(cell);
  EXPECT_EQ(legacy.find(" batch "), std::string::npos) << legacy;
  const std::optional<CellResult> legacy_decoded = decode_cell_record(legacy);
  ASSERT_TRUE(legacy_decoded.has_value());
  EXPECT_EQ(legacy_decoded->batch, 1);

  // A torn batch segment is corrupt, not legacy.
  EXPECT_FALSE(decode_cell_record(record.substr(0, record.size() - 2))
                   .has_value());
}

TEST(ZooSweepTest, CheckpointCarriesBankAndBatchSegmentsTogether) {
  CellResult cell;
  cell.index = 2;
  cell.status = CellStatus::kOk;
  cell.batch = 8;
  cell.config.cost_model = pim::CostModelKind::kBanked;
  cell.config.edram_banks = 4;
  cell.bank.banks = 4;
  cell.bank.conflicts = 7;
  cell.bank.stall_units = 21;
  cell.bank.peak_occupancy = 3;

  const std::string record = encode_cell_record(cell);
  EXPECT_NE(record.find(" bank 4 7 21 3"), std::string::npos) << record;
  EXPECT_NE(record.find(" batch 8"), std::string::npos) << record;
  const std::optional<CellResult> decoded = decode_cell_record(record);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->bank.conflicts, 7);
  EXPECT_EQ(decoded->batch, 8);
}

TEST(ZooSweepTest, FingerprintSeparatesBatchedGridsOnly) {
  SweepOptions options;
  options.seed = 7;
  // A batch-1 case fingerprints exactly like a case with the batch field
  // left at its default: the axis is not mixed in, so batch-free
  // checkpoints from before the axis existed stay resumable.
  GridSpec base = zoo_spec();
  for (SweepCase& sweep_case : base.cases) sweep_case.batch = 1;
  GridSpec defaulted = zoo_spec();
  for (SweepCase& sweep_case : defaulted.cases) sweep_case.batch = 1;
  EXPECT_EQ(sweep_fingerprint(base, options),
            sweep_fingerprint(defaulted, options));

  // Same graphs, different recorded batch: distinct fingerprints.
  GridSpec batched = zoo_spec();
  for (SweepCase& sweep_case : batched.cases) sweep_case.batch = 2;
  EXPECT_NE(sweep_fingerprint(base, options),
            sweep_fingerprint(batched, options));
  // And the shipped mixed-batch grid differs from the all-batch-1 view.
  EXPECT_NE(sweep_fingerprint(zoo_spec(), options),
            sweep_fingerprint(base, options));
}

TEST(ZooSweepTest, BatchedSweepResumesByteIdentical) {
  const GridSpec spec = zoo_spec();
  const std::string path =
      testing::TempDir() + "paraconv_zoo_sweep_checkpoint.txt";
  std::remove(path.c_str());

  SweepOptions options;
  options.seed = 7;
  options.checkpoint_path = path;
  const SweepResult first = run_sweep(spec, options);
  ASSERT_EQ(first.cells_ok, spec.cell_count());
  std::ostringstream first_csv;
  write_sweep_csv(first_csv, first);

  options.resume = true;
  const SweepResult resumed = run_sweep(spec, options);
  EXPECT_EQ(resumed.cells_resumed, spec.cell_count());
  std::ostringstream resumed_csv;
  write_sweep_csv(resumed_csv, resumed);
  // Resumed cells reconstruct identity (including batch) from the grid and
  // restore computed fields from the records: the report is byte-identical.
  EXPECT_EQ(first_csv.str(), resumed_csv.str());
  EXPECT_EQ(resumed_csv.str().rfind("index,benchmark,batch,", 0), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace paraconv::dse
