// Grid sharding and checkpoint merging: the partition must tile the grid
// exactly once for any shard count, and merging the N shard checkpoints
// must rebuild reports byte-identical to a single-process sweep — with
// typed MergeErrors for every way a set of shard files can be wrong.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "dse/checkpoint.hpp"
#include "dse/frontier.hpp"
#include "dse/shard.hpp"
#include "dse/sweep.hpp"
#include "graph/paper_benchmarks.hpp"

namespace paraconv::dse {
namespace {

SweepCase paper_case(const char* name) {
  return {name, graph::build_paper_benchmark(graph::paper_benchmark(name))};
}

// Four healthy cells: 2 benchmarks x 1 config x 1 packer x 2 allocators.
GridSpec healthy_grid() {
  GridSpec spec;
  spec.iterations = 10;
  spec.cases.push_back(paper_case("cat"));
  spec.cases.push_back(paper_case("flower"));
  spec.configs = {pim::PimConfig::neurocube(8)};
  spec.allocators = {core::AllocatorKind::kKnapsackDp,
                     core::AllocatorKind::kGreedyDeadline};
  return spec;
}

// Six cells; grid indices 2 and 3 (the "broken" case) always fail: an
// empty graph trips TaskGraph::validate inside evaluate_cell. Error rows
// must survive the shard/merge round trip just like ok rows.
GridSpec faulty_grid() {
  GridSpec spec;
  spec.iterations = 10;
  spec.cases.push_back(paper_case("cat"));
  spec.cases.push_back({"broken", graph::TaskGraph{}});
  spec.cases.push_back(paper_case("flower"));
  spec.configs = {pim::PimConfig::neurocube(8)};
  spec.allocators = {core::AllocatorKind::kKnapsackDp,
                     core::AllocatorKind::kGreedyDeadline};
  return spec;
}

std::string serialize(const SweepResult& sweep) {
  std::ostringstream csv;
  write_sweep_csv(csv, sweep);
  return csv.str() + "\n---\n" + sweep_to_json(sweep).dump(/*pretty=*/true);
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

/// Runs the grid as `count` independent sharded sweeps (each writing its
/// own checkpoint under `tag`) and returns the checkpoint paths.
std::vector<std::string> run_sharded(const GridSpec& spec,
                                     const SweepOptions& base,
                                     std::size_t count,
                                     const std::string& tag) {
  std::vector<std::string> paths;
  for (std::size_t index = 0; index < count; ++index) {
    SweepOptions options = base;
    options.shard_index = index;
    options.shard_count = count;
    options.checkpoint_path =
        temp_path(tag + "." + std::to_string(index) + "of" +
                  std::to_string(count) + ".ckpt");
    std::remove(options.checkpoint_path.c_str());
    run_sweep(spec, options);
    paths.push_back(options.checkpoint_path);
  }
  return paths;
}

TEST(ShardTest, BoundsTileEveryGridExactlyOnceBalancedAndContiguous) {
  for (const std::size_t cells : {0UL, 1UL, 2UL, 5UL, 16UL, 97UL}) {
    for (const std::size_t count : {1UL, 2UL, 3UL, 7UL}) {
      std::size_t expected_first = 0;
      std::size_t covered = 0;
      for (std::size_t index = 0; index < count; ++index) {
        const auto [first, last] =
            shard_bounds(ShardSpec{index, count}, cells);
        // Contiguous: each slice starts where the previous one ended.
        EXPECT_EQ(first, expected_first)
            << "cells=" << cells << " shard=" << index << "/" << count;
        EXPECT_LE(first, last);
        // Balanced: sizes differ by at most one.
        const std::size_t size = last - first;
        EXPECT_LE(size, cells / count + 1);
        covered += size;
        expected_first = last;
      }
      // Exhaustive: the union is exactly [0, cells).
      EXPECT_EQ(expected_first, cells);
      EXPECT_EQ(covered, cells);
    }
  }
}

TEST(ShardTest, BoundsRejectAnInvalidSpec) {
  EXPECT_THROW(shard_bounds(ShardSpec{0, 0}, 4), ContractViolation);
  EXPECT_THROW(shard_bounds(ShardSpec{3, 3}, 4), ContractViolation);
}

TEST(ShardTest, ParseShardAcceptsStrictIOverN) {
  std::string error;
  const std::optional<ShardSpec> ok = parse_shard("1/3", &error);
  ASSERT_TRUE(ok.has_value()) << error;
  EXPECT_EQ(ok->index, 1U);
  EXPECT_EQ(ok->count, 3U);

  const std::optional<ShardSpec> whole = parse_shard("0/1", nullptr);
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(whole->index, 0U);
  EXPECT_EQ(whole->count, 1U);

  for (const char* bad : {"", "2", "a/b", "1/", "/3", "1/0", "3/3", "-1/3",
                          "1/3/5", "1 /3", "0x1/3"}) {
    error.clear();
    EXPECT_FALSE(parse_shard(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(ShardTest, MergedReportIsByteIdenticalToAnUnshardedRun) {
  const GridSpec spec = healthy_grid();
  SweepOptions base;
  base.jobs = 1;
  base.seed = 21;
  const std::string unsharded = serialize(run_sweep(spec, base));

  for (const std::size_t count : {1UL, 2UL, 3UL, 7UL}) {
    const std::vector<std::string> paths = run_sharded(
        spec, base, count, "merge_healthy_" + std::to_string(count));
    const SweepResult merged = merge_checkpoints(spec, base, paths);
    EXPECT_EQ(serialize(merged), unsharded) << "count=" << count;
    EXPECT_EQ(merged.cells_ok, spec.cell_count());
    EXPECT_EQ(merged.cells_failed, 0U);
    EXPECT_EQ(merged.cells_resumed, spec.cell_count());
  }
}

TEST(ShardTest, MergePreservesTypedErrorRowsByteForByte) {
  const GridSpec spec = faulty_grid();
  SweepOptions base;
  base.jobs = 1;
  const SweepResult whole = run_sweep(spec, base);
  ASSERT_EQ(whole.cells_failed, 2U);
  const std::string unsharded = serialize(whole);

  const std::vector<std::string> paths =
      run_sharded(spec, base, 3, "merge_faulty");
  const SweepResult merged = merge_checkpoints(spec, base, paths);
  EXPECT_EQ(serialize(merged), unsharded);
  EXPECT_EQ(merged.cells_failed, 2U);
  EXPECT_EQ(merged.cells[2].status, CellStatus::kError);
  EXPECT_EQ(merged.cells[2].error_code, "contract-violation");
}

TEST(ShardTest, ShardedRunCarriesOnlyTheOwnedSliceWithGlobalIndices) {
  const GridSpec spec = healthy_grid();
  SweepOptions options;
  options.jobs = 1;
  options.shard_index = 1;
  options.shard_count = 3;
  options.checkpoint_path = temp_path("owned_slice.ckpt");
  std::remove(options.checkpoint_path.c_str());
  const SweepResult sweep = run_sweep(spec, options);

  const auto [first, last] =
      shard_bounds(ShardSpec{options.shard_index, options.shard_count},
                   spec.cell_count());
  ASSERT_EQ(sweep.cells.size(), last - first);
  for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
    EXPECT_EQ(sweep.cells[i].index, first + i);
  }
}

TEST(ShardTest, ShardedShardsAreIndependentlyResumable) {
  const GridSpec spec = healthy_grid();
  SweepOptions options;
  options.jobs = 1;
  options.shard_index = 0;
  options.shard_count = 2;
  options.checkpoint_path = temp_path("shard_resume.ckpt");
  std::remove(options.checkpoint_path.c_str());
  const std::string first_run = serialize(run_sweep(spec, options));

  options.resume = true;
  const SweepResult resumed = run_sweep(spec, options);
  const auto [first, last] =
      shard_bounds(ShardSpec{0, 2}, spec.cell_count());
  EXPECT_EQ(resumed.cells_resumed, last - first);
  EXPECT_EQ(serialize(resumed), first_run);
}

TEST(ShardTest, MergeRejectsADuplicatedShardFile) {
  const GridSpec spec = healthy_grid();
  SweepOptions base;
  base.jobs = 1;
  std::vector<std::string> paths = run_sharded(spec, base, 2, "dup");
  paths.push_back(paths.front());
  try {
    merge_checkpoints(spec, base, paths);
    FAIL() << "expected MergeError";
  } catch (const MergeError& error) {
    EXPECT_EQ(error.code(), "merge-overlap");
    EXPECT_NE(std::string(error.what()).find("settled by both"),
              std::string::npos);
  }
}

TEST(ShardTest, MergeRejectsAMissingSlice) {
  const GridSpec spec = healthy_grid();
  SweepOptions base;
  base.jobs = 1;
  std::vector<std::string> paths = run_sharded(spec, base, 3, "gap");
  paths.pop_back();
  try {
    merge_checkpoints(spec, base, paths);
    FAIL() << "expected MergeError";
  } catch (const MergeError& error) {
    EXPECT_EQ(error.code(), "merge-missing-cells");
  }
}

TEST(ShardTest, MergeRejectsATruncatedShardFile) {
  const GridSpec spec = healthy_grid();
  SweepOptions base;
  base.jobs = 1;
  const std::vector<std::string> paths = run_sharded(spec, base, 2, "trunc");
  // Drop the last record of shard 1: its slice is now incomplete.
  const std::string contents = read_file(paths[1]);
  const std::size_t cut = contents.rfind('\n', contents.size() - 2);
  ASSERT_NE(cut, std::string::npos);
  write_file(paths[1], contents.substr(0, cut + 1));
  try {
    merge_checkpoints(spec, base, paths);
    FAIL() << "expected MergeError";
  } catch (const MergeError& error) {
    EXPECT_EQ(error.code(), "merge-missing-cells");
  }
}

TEST(ShardTest, MergeRejectsAForeignFingerprint) {
  const GridSpec spec = healthy_grid();
  SweepOptions base;
  base.jobs = 1;
  const std::vector<std::string> paths = run_sharded(spec, base, 2, "fpr");
  SweepOptions reseeded = base;
  reseeded.seed = 99;  // different per-cell seeds => different sweep
  try {
    merge_checkpoints(spec, reseeded, paths);
    FAIL() << "expected MergeError";
  } catch (const MergeError& error) {
    EXPECT_EQ(error.code(), "merge-fingerprint-mismatch");
  }
}

TEST(ShardTest, MergeRejectsMissingFileEmptyInputsAndAlienHeaders) {
  const GridSpec spec = healthy_grid();
  SweepOptions base;
  base.jobs = 1;

  try {
    merge_checkpoints(spec, base, {});
    FAIL() << "expected MergeError";
  } catch (const MergeError& error) {
    EXPECT_EQ(error.code(), "merge-no-inputs");
  }

  const std::string missing = temp_path("never_written.ckpt");
  std::remove(missing.c_str());
  try {
    merge_checkpoints(spec, base, {missing});
    FAIL() << "expected MergeError";
  } catch (const MergeError& error) {
    EXPECT_EQ(error.code(), "merge-file-missing");
  }

  const std::string alien = temp_path("alien.ckpt");
  write_file(alien, "totally-not-a-checkpoint 1 2 3\n");
  try {
    merge_checkpoints(spec, base, {alien});
    FAIL() << "expected MergeError";
  } catch (const MergeError& error) {
    EXPECT_EQ(error.code(), "merge-bad-header");
  }
}

TEST(ShardTest, MergeRejectsAnErrorRecordWithoutACode) {
  const GridSpec spec = healthy_grid();
  SweepOptions base;
  base.jobs = 1;
  const std::vector<std::string> paths = run_sharded(spec, base, 1, "noc");
  // Replace cell 0's record with an error record whose code is the "-"
  // empty-token: a violation of the cell contract the merge must refuse
  // to adopt rather than launder into the report.
  std::string contents = read_file(paths[0]);
  const std::size_t header_end = contents.find('\n');
  const std::size_t first_record_end = contents.find('\n', header_end + 1);
  ASSERT_NE(first_record_end, std::string::npos);
  write_file(paths[0], contents.substr(0, header_end + 1) +
                           "cell 0 error - message-without-a-code\n" +
                           contents.substr(first_record_end + 1));
  try {
    merge_checkpoints(spec, base, paths);
    FAIL() << "expected MergeError";
  } catch (const MergeError& error) {
    EXPECT_EQ(error.code(), "merge-corrupt-record");
  }
}

}  // namespace
}  // namespace paraconv::dse
