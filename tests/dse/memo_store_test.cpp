#include "dse/memo_store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "dse/frontier.hpp"
#include "dse/sweep.hpp"
#include "graph/paper_benchmarks.hpp"
#include "pim/config.hpp"

namespace paraconv::dse {
namespace {

graph::TaskGraph benchmark_graph(const std::string& name) {
  return graph::build_paper_benchmark(graph::paper_benchmark(name));
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "memo_store_" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

PackingKey key_for(const graph::TaskGraph& g, int pes) {
  return make_packing_key(g, pim::PimConfig::neurocube(pes),
                          core::PackerKind::kTopological, /*refine_steps=*/0,
                          /*refine_seed=*/0);
}

/// A hand-built schedule exercising every payload field, including
/// negative retiming deltas and a zero-length placement edge case.
core::PackedSchedule sample_schedule() {
  core::PackedSchedule packed;
  packed.packing.period = TimeUnits{48};
  packed.packing.placement = {{0, TimeUnits{0}},
                              {3, TimeUnits{16}},
                              {1, TimeUnits{32}}};
  packed.deltas = {{1, 0}, {-2, 3}, {0, -1}};
  return packed;
}

TEST(MemoStoreTest, RoundTripIsExact) {
  const graph::TaskGraph g = benchmark_graph("cat");
  MemoCache cache;
  cache.insert(key_for(g, 16), sample_schedule());
  core::PackedSchedule empty;
  empty.packing.period = TimeUnits{1};
  cache.insert(key_for(g, 32), empty);

  const std::string path = temp_path("round_trip.memo");
  EXPECT_EQ(save_memo_cache(cache, path), 2u);

  MemoCache restored;
  EXPECT_EQ(load_memo_cache(&restored, path), 2u);

  const MemoCache::Value value = restored.find(key_for(g, 16));
  ASSERT_NE(value, nullptr);
  const core::PackedSchedule expected = sample_schedule();
  EXPECT_EQ(value->packing.period.value, expected.packing.period.value);
  ASSERT_EQ(value->packing.placement.size(),
            expected.packing.placement.size());
  for (std::size_t i = 0; i < expected.packing.placement.size(); ++i) {
    EXPECT_EQ(value->packing.placement[i].pe,
              expected.packing.placement[i].pe);
    EXPECT_EQ(value->packing.placement[i].start.value,
              expected.packing.placement[i].start.value);
  }
  ASSERT_EQ(value->deltas.size(), expected.deltas.size());
  for (std::size_t i = 0; i < expected.deltas.size(); ++i) {
    EXPECT_EQ(value->deltas[i].cache, expected.deltas[i].cache);
    EXPECT_EQ(value->deltas[i].edram, expected.deltas[i].edram);
  }
  const MemoCache::Value other = restored.find(key_for(g, 32));
  ASSERT_NE(other, nullptr);
  EXPECT_TRUE(other->packing.placement.empty());
  EXPECT_TRUE(other->deltas.empty());
}

TEST(MemoStoreTest, SpillFilesAreByteStableAcrossInsertionOrder) {
  const graph::TaskGraph g = benchmark_graph("cat");
  MemoCache forward;
  forward.insert(key_for(g, 16), sample_schedule());
  forward.insert(key_for(g, 32), sample_schedule());
  MemoCache backward;
  backward.insert(key_for(g, 32), sample_schedule());
  backward.insert(key_for(g, 16), sample_schedule());

  const std::string a = temp_path("stable_a.memo");
  const std::string b = temp_path("stable_b.memo");
  save_memo_cache(forward, a);
  save_memo_cache(backward, b);
  EXPECT_EQ(read_file(a), read_file(b));
}

TEST(MemoStoreTest, MissingFileIsAColdStart) {
  MemoCache cache;
  EXPECT_EQ(load_memo_cache(&cache, temp_path("never_written.memo")), 0u);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().loaded, 0u);
}

TEST(MemoStoreTest, TruncatedFileIsRejected) {
  const graph::TaskGraph g = benchmark_graph("cat");
  MemoCache cache;
  cache.insert(key_for(g, 16), sample_schedule());
  const std::string path = temp_path("truncated.memo");
  save_memo_cache(cache, path);

  const std::string full = read_file(path);
  // Drop the fingerprint trailer entirely, then drop part of an entry.
  for (const std::size_t keep :
       {full.rfind("fingerprint"), full.size() / 2}) {
    ASSERT_NE(keep, std::string::npos);
    write_file(path, full.substr(0, keep));
    MemoCache restored;
    EXPECT_THROW(load_memo_cache(&restored, path), ContractViolation);
  }
}

TEST(MemoStoreTest, EditedEntryFailsTheFingerprint) {
  const graph::TaskGraph g = benchmark_graph("cat");
  MemoCache cache;
  cache.insert(key_for(g, 16), sample_schedule());
  const std::string path = temp_path("edited.memo");
  save_memo_cache(cache, path);

  std::string contents = read_file(path);
  const std::size_t pos = contents.find(" 48 ");  // the period token
  ASSERT_NE(pos, std::string::npos);
  contents.replace(pos, 4, " 49 ");
  write_file(path, contents);

  MemoCache restored;
  EXPECT_THROW(load_memo_cache(&restored, path), ContractViolation);
}

TEST(MemoStoreTest, WrongMagicOrVersionIsRejected) {
  const graph::TaskGraph g = benchmark_graph("cat");
  MemoCache cache;
  cache.insert(key_for(g, 16), sample_schedule());
  const std::string path = temp_path("header.memo");
  save_memo_cache(cache, path);
  const std::string full = read_file(path);

  std::string wrong_magic = full;
  wrong_magic.replace(0, std::string("paraconv-memo-cache").size(),
                      "paraconv-checkpoint");
  write_file(path, wrong_magic);
  MemoCache restored_magic;
  EXPECT_THROW(load_memo_cache(&restored_magic, path), ContractViolation);

  std::string wrong_version = full;
  const std::size_t v = wrong_version.find(" 1 ");
  ASSERT_NE(v, std::string::npos);
  wrong_version.replace(v, 3, " 2 ");
  write_file(path, wrong_version);
  MemoCache restored_version;
  EXPECT_THROW(load_memo_cache(&restored_version, path), ContractViolation);
}

TEST(MemoStoreTest, StatsRecordSpillAndLoadVolumes) {
  const graph::TaskGraph g = benchmark_graph("cat");
  MemoCache cache;
  cache.insert(key_for(g, 16), sample_schedule());
  cache.insert(key_for(g, 32), sample_schedule());
  const std::string path = temp_path("stats.memo");
  save_memo_cache(cache, path);
  save_memo_cache(cache, path);
  EXPECT_EQ(cache.stats().spilled, 4u);
  EXPECT_EQ(cache.stats().loaded, 0u);

  MemoCache restored;
  load_memo_cache(&restored, path);
  EXPECT_EQ(restored.stats().loaded, 2u);
  EXPECT_EQ(restored.stats().entries, 2u);
  EXPECT_EQ(restored.stats().spilled, 0u);
}

TEST(MemoStoreTest, WarmCacheReproducesColdResultsByteForByte) {
  // The persistence acceptance bar: a schedule computed against a cache
  // restored from disk must match the cold computation exactly, down to
  // the serialized cell JSON.
  const SweepCase sweep_case{"cat", benchmark_graph("cat")};
  const pim::PimConfig config = pim::PimConfig::neurocube(16);
  const auto evaluate = [&](MemoCache* cache) {
    const CellResult cell = evaluate_cell(
        sweep_case, config, core::PackerKind::kTopological,
        core::AllocatorKind::kKnapsackDp, /*iterations=*/50,
        /*refine_steps=*/0, /*seed=*/0, /*with_baseline=*/true, cache);
    return cell_to_json(cell).dump();
  };

  MemoCache cold;
  const std::string cold_json = evaluate(&cold);
  EXPECT_EQ(cold.stats().misses, 1u);

  const std::string path = temp_path("warm.memo");
  save_memo_cache(cold, path);

  MemoCache warm;
  ASSERT_EQ(load_memo_cache(&warm, path), 1u);
  const std::string warm_json = evaluate(&warm);
  EXPECT_EQ(warm.stats().hits, 1u);
  EXPECT_EQ(warm.stats().misses, 0u);
  EXPECT_EQ(warm_json, cold_json);
}

}  // namespace
}  // namespace paraconv::dse
