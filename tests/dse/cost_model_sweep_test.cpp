// Cost-model sweep contracts:
//  - default constant-model sweeps are byte-identical to the committed
//    pre-cost-model golden fixtures (CSV and JSON), so the pluggable
//    CostModel is provably a no-op on the legacy path;
//  - banked sweeps extend the schema deterministically across job counts;
//  - the checkpoint codec round-trips the bank segment and the fingerprint
//    separates banked grids without invalidating constant ones.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#include "dse/checkpoint.hpp"
#include "dse/frontier.hpp"
#include "dse/sweep.hpp"
#include "graph/paper_benchmarks.hpp"

namespace paraconv::dse {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

GridSpec golden_spec() {
  // Mirrors the CLI invocation the fixtures were generated with:
  //   sweep --benchmarks cat,flower --pe-counts 16,32
  //         --allocators dp,greedy-density --packers topo
  //         --iterations 20 --seed 7
  GridSpec spec;
  for (const char* name : {"cat", "flower"}) {
    spec.cases.push_back({name, graph::build_paper_benchmark(
                                    graph::paper_benchmark(name))});
  }
  spec.configs = {pim::PimConfig::neurocube(16),
                  pim::PimConfig::neurocube(32)};
  spec.packers = {core::PackerKind::kTopological};
  spec.allocators = {core::AllocatorKind::kKnapsackDp,
                     core::AllocatorKind::kGreedyDensity};
  spec.iterations = 20;
  return spec;
}

GridSpec banked_spec(int banks, pim::BankPolicy policy) {
  GridSpec spec = golden_spec();
  for (pim::PimConfig& config : spec.configs) {
    config.cost_model = pim::CostModelKind::kBanked;
    config.edram_banks = banks;
    config.bank_policy = policy;
  }
  return spec;
}

TEST(CostModelSweepTest, ConstantSweepMatchesGoldenFixturesByteForByte) {
  SweepOptions options;
  options.seed = 7;
  const SweepResult sweep = run_sweep(golden_spec(), options);

  std::ostringstream csv;
  write_sweep_csv(csv, sweep);
  EXPECT_EQ(csv.str(),
            read_file(std::string(PARACONV_DSE_GOLDEN_DIR) +
                      "/sweep_constant.csv"));

  const std::string json = sweep_to_json(sweep).dump(/*pretty=*/true) + "\n";
  EXPECT_EQ(json, read_file(std::string(PARACONV_DSE_GOLDEN_DIR) +
                            "/sweep_constant.json"));
}

TEST(CostModelSweepTest, BankedSweepIsDeterministicAcrossJobs) {
  const GridSpec spec = banked_spec(8, pim::BankPolicy::kInterleave);
  std::string csv_by_jobs[2];
  for (int i = 0; i < 2; ++i) {
    SweepOptions options;
    options.seed = 7;
    options.jobs = i == 0 ? 1 : 4;
    const SweepResult sweep = run_sweep(spec, options);
    std::ostringstream csv;
    write_sweep_csv(csv, sweep);
    csv_by_jobs[i] = csv.str();
  }
  EXPECT_EQ(csv_by_jobs[0], csv_by_jobs[1]);
  EXPECT_NE(csv_by_jobs[0].find("bank_conflicts"), std::string::npos);
}

TEST(CostModelSweepTest, BankedCellsCarryMeasuredCounters) {
  SweepOptions options;
  options.seed = 7;
  const SweepResult sweep =
      run_sweep(banked_spec(1, pim::BankPolicy::kInterleave), options);
  ASSERT_FALSE(sweep.cells.empty());
  for (const CellResult& cell : sweep.cells) {
    ASSERT_EQ(cell.status, CellStatus::kOk);
    EXPECT_EQ(cell.bank.banks, 1);
    // A single bank per vault serializes every co-resident stream pair, so
    // peak demand is at least one whenever the schedule moves data.
    EXPECT_GE(cell.bank.peak_occupancy, 1);
    EXPECT_GE(cell.bank.stall_units, 0);
  }
}

TEST(CostModelSweepTest, MixedGridStaysRectangular) {
  // One constant and one banked config in the same grid: every row gets
  // the banked header's column count, with the constant rows leaving bank
  // metrics empty (no data != a perfect zero).
  GridSpec spec = golden_spec();
  spec.cases.resize(1);
  spec.configs.resize(2);
  spec.configs[1].cost_model = pim::CostModelKind::kBanked;
  spec.configs[1].edram_banks = 4;
  SweepOptions options;
  options.seed = 7;
  const SweepResult sweep = run_sweep(spec, options);

  std::ostringstream os;
  write_sweep_csv(os, sweep);
  std::istringstream lines(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  const auto count_columns = [](const std::string& row) {
    return 1 + std::count(row.begin(), row.end(), ',');
  };
  const auto header_columns = count_columns(line);
  EXPECT_NE(line.find("cost_model"), std::string::npos);
  int rows = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(count_columns(line), header_columns) << line;
    ++rows;
  }
  EXPECT_EQ(rows, static_cast<int>(sweep.cells.size()));
}

TEST(CostModelSweepTest, CheckpointRoundTripsBankSegment) {
  CellResult cell;
  cell.index = 3;
  cell.status = CellStatus::kOk;
  cell.energy_uj = 1.25;
  cell.config.cost_model = pim::CostModelKind::kBanked;
  cell.config.edram_banks = 4;
  cell.bank.banks = 4;
  cell.bank.conflicts = 7;
  cell.bank.stall_units = 21;
  cell.bank.peak_occupancy = 3;

  const std::string record = encode_cell_record(cell);
  EXPECT_NE(record.find(" bank 4 7 21 3"), std::string::npos) << record;
  const std::optional<CellResult> decoded = decode_cell_record(record);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->bank.banks, 4);
  EXPECT_EQ(decoded->bank.conflicts, 7);
  EXPECT_EQ(decoded->bank.stall_units, 21);
  EXPECT_EQ(decoded->bank.peak_occupancy, 3);

  // A legacy (constant) record carries no segment and still decodes.
  cell.config.cost_model = pim::CostModelKind::kConstant;
  const std::string legacy = encode_cell_record(cell);
  EXPECT_EQ(legacy.find(" bank "), std::string::npos) << legacy;
  ASSERT_TRUE(decode_cell_record(legacy).has_value());

  // A torn bank segment is corrupt, not legacy.
  EXPECT_FALSE(decode_cell_record(record.substr(0, record.size() - 2))
                   .has_value());
}

TEST(CostModelSweepTest, FingerprintSeparatesBankedGridsOnly) {
  const GridSpec constant = golden_spec();
  SweepOptions options;
  options.seed = 7;
  const std::uint64_t base = sweep_fingerprint(constant, options);
  // Constant grids fingerprint exactly as before the cost model existed:
  // bank fields are not mixed in, so old checkpoints stay resumable.
  EXPECT_EQ(base, sweep_fingerprint(golden_spec(), options));
  // Banked grids must not collide with the constant one, and bank
  // count/policy must separate banked grids from each other.
  const std::uint64_t banked8 =
      sweep_fingerprint(banked_spec(8, pim::BankPolicy::kInterleave),
                        options);
  const std::uint64_t banked4 =
      sweep_fingerprint(banked_spec(4, pim::BankPolicy::kInterleave),
                        options);
  const std::uint64_t banked8_block =
      sweep_fingerprint(banked_spec(8, pim::BankPolicy::kBlock), options);
  EXPECT_NE(base, banked8);
  EXPECT_NE(banked8, banked4);
  EXPECT_NE(banked8, banked8_block);
}

}  // namespace
}  // namespace paraconv::dse
