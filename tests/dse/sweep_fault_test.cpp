// Fault isolation, fail-fast, and checkpoint/resume behaviour of the sweep
// engine. The fault injector is a grid case whose graph is empty: it passes
// the shape-only GridSpec::validate but throws ContractViolation inside its
// own cells, which is exactly the class of failure the engine must contain.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "dse/checkpoint.hpp"
#include "dse/frontier.hpp"
#include "dse/sweep.hpp"
#include "graph/paper_benchmarks.hpp"

namespace paraconv::dse {
namespace {

SweepCase paper_case(const char* name) {
  return {name, graph::build_paper_benchmark(graph::paper_benchmark(name))};
}

// Three cells; the middle one (grid index 1) always fails: an empty graph
// trips TaskGraph::validate inside evaluate_cell.
GridSpec faulty_grid() {
  GridSpec spec;
  spec.iterations = 10;
  spec.cases.push_back(paper_case("cat"));
  spec.cases.push_back({"broken", graph::TaskGraph{}});
  spec.cases.push_back(paper_case("flower"));
  spec.configs = {pim::PimConfig::neurocube(8)};
  return spec;
}

// Four healthy cells: 2 benchmarks x 1 config x 1 packer x 2 allocators.
GridSpec healthy_grid() {
  GridSpec spec;
  spec.iterations = 10;
  spec.cases.push_back(paper_case("cat"));
  spec.cases.push_back(paper_case("flower"));
  spec.configs = {pim::PimConfig::neurocube(8)};
  spec.allocators = {core::AllocatorKind::kKnapsackDp,
                     core::AllocatorKind::kGreedyDeadline};
  return spec;
}

std::string serialize(const SweepResult& sweep) {
  std::ostringstream csv;
  write_sweep_csv(csv, sweep);
  return csv.str() + "\n---\n" + sweep_to_json(sweep).dump(/*pretty=*/true);
}

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

/// Offset just past the first `lines` newline-terminated lines.
std::size_t offset_after_lines(const std::string& contents,
                               std::size_t lines) {
  std::size_t offset = 0;
  for (std::size_t i = 0; i < lines; ++i) {
    offset = contents.find('\n', offset);
    EXPECT_NE(offset, std::string::npos);
    ++offset;
  }
  return offset;
}

TEST(SweepFaultTest, FailingCellBecomesErrorRowOthersSettle) {
  const GridSpec spec = faulty_grid();
  SweepOptions options;
  options.jobs = 1;
  const SweepResult sweep = run_sweep(spec, options);

  ASSERT_EQ(sweep.cells.size(), 3U);
  EXPECT_EQ(sweep.cells_ok, 2U);
  EXPECT_EQ(sweep.cells_failed, 1U);
  EXPECT_EQ(sweep.cells_resumed, 0U);

  const CellResult& failed = sweep.cells[1];
  EXPECT_EQ(failed.status, CellStatus::kError);
  EXPECT_EQ(failed.error_code, "contract-violation");
  EXPECT_NE(failed.error_message.find("at least one task"),
            std::string::npos);
  // Identity columns survive the failure.
  EXPECT_EQ(failed.benchmark, "broken");
  EXPECT_EQ(failed.index, 1U);
  EXPECT_EQ(failed.config.pe_count, 8);

  for (const std::size_t ok_index : {0UL, 2UL}) {
    EXPECT_EQ(sweep.cells[ok_index].status, CellStatus::kOk);
    EXPECT_TRUE(sweep.cells[ok_index].error_code.empty());
    EXPECT_GT(sweep.cells[ok_index].para.total_time.value, 0);
  }
}

TEST(SweepFaultTest, OkCellsAreUnaffectedByANeighbouringFailure) {
  const GridSpec faulty = faulty_grid();
  SweepOptions options;
  options.jobs = 1;
  const SweepResult sweep = run_sweep(faulty, options);

  // The same healthy cell evaluated directly, outside any sweep.
  const CellResult direct = evaluate_cell(
      faulty.cases[0], faulty.configs[0], faulty.packers[0],
      faulty.allocators[0], faulty.iterations, faulty.refine_steps,
      cell_seed(options.seed, 0), options.with_baseline, nullptr);
  EXPECT_EQ(sweep.cells[0].para.total_time, direct.para.total_time);
  EXPECT_EQ(sweep.cells[0].energy_uj, direct.energy_uj);
  EXPECT_EQ(sweep.cells[0].sparta.total_time, direct.sparta.total_time);
}

TEST(SweepFaultTest, FaultIsolationIsByteIdenticalAcrossJobCounts) {
  const GridSpec spec = faulty_grid();
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions parallel;
  parallel.jobs = 4;
  const SweepResult a = run_sweep(spec, serial);
  const SweepResult b = run_sweep(spec, parallel);
  EXPECT_EQ(serialize(a), serialize(b));
  EXPECT_EQ(a.cells_failed, b.cells_failed);
  EXPECT_EQ(a.cells_ok, b.cells_ok);
}

TEST(SweepFaultTest, ErrorCellsNeverJoinOrShapeTheParetoFrontier) {
  const SweepResult sweep = run_sweep(faulty_grid(), SweepOptions{.jobs = 1});
  const std::vector<std::size_t> frontier = pareto_frontier(sweep.cells);
  EXPECT_FALSE(frontier.empty());
  for (const std::size_t index : frontier) {
    EXPECT_EQ(sweep.cells[index].status, CellStatus::kOk);
  }
  // An error cell's default-zero metrics must not dominate real cells out
  // of the frontier: every ok cell that would be non-dominated among ok
  // cells alone is still present.
  std::vector<CellResult> ok_only;
  for (const CellResult& cell : sweep.cells) {
    if (cell.status == CellStatus::kOk) ok_only.push_back(cell);
  }
  EXPECT_EQ(pareto_frontier(ok_only).size(), frontier.size());
}

TEST(SweepFaultTest, ErrorRowsKeepIdentityAndBlankMetricsInCsv) {
  const SweepResult sweep = run_sweep(faulty_grid(), SweepOptions{.jobs = 1});
  std::ostringstream os;
  write_sweep_csv(os, sweep);
  const std::string csv = os.str();
  std::istringstream lines(csv);
  std::string header;
  std::getline(lines, header);
  EXPECT_NE(header.find("status,error_code,error_message"),
            std::string::npos);
  std::string row0, row1;
  std::getline(lines, row0);
  std::getline(lines, row1);
  EXPECT_NE(row0.find(",ok,,"), std::string::npos);
  EXPECT_NE(row1.find("broken"), std::string::npos);
  EXPECT_NE(row1.find(",error,contract-violation,"), std::string::npos);
  // Metric columns of the error row are empty, not zero.
  EXPECT_NE(row1.find(",,,"), std::string::npos);
}

TEST(SweepFaultTest, FailFastRethrowsAndLeavesAPartialCheckpoint) {
  const GridSpec spec = faulty_grid();
  const std::string path = temp_path("fail_fast.ckpt");
  std::remove(path.c_str());

  SweepOptions options;
  options.jobs = 1;
  options.fail_fast = true;
  options.checkpoint_path = path;
  EXPECT_THROW(run_sweep(spec, options), ContractViolation);

  // Header + cell 0 (ok) + cell 1 (the failure). Cell 2 never started.
  const std::string contents = read_file(path);
  ASSERT_FALSE(contents.empty());
  std::istringstream lines(contents);
  std::string line;
  std::vector<std::string> records;
  while (std::getline(lines, line)) records.push_back(line);
  ASSERT_EQ(records.size(), 3U);
  EXPECT_NE(records[0].find("paraconv-sweep-checkpoint"), std::string::npos);
  EXPECT_EQ(records[1].rfind("cell 0 ok", 0), 0U);
  EXPECT_EQ(records[2].rfind("cell 1 error contract-violation", 0), 0U);
}

TEST(SweepFaultTest, FailFastMatchesAcrossJobCountsForTheRethrownError) {
  const GridSpec spec = faulty_grid();
  for (const int jobs : {1, 4}) {
    SweepOptions options;
    options.jobs = jobs;
    options.fail_fast = true;
    EXPECT_THROW(run_sweep(spec, options), ContractViolation)
        << "jobs=" << jobs;
  }
}

TEST(SweepFaultTest, CheckpointRecordsRoundTripExactly) {
  CellResult cell;
  cell.index = 7;
  cell.status = CellStatus::kOk;
  cell.energy_uj = 0.1 + 0.2;  // not representable exactly in decimal
  cell.para.scheduler = "Para-CONV";
  cell.para.iteration_time = TimeUnits{123};
  cell.para.r_max = 4;
  cell.para.prologue_time = TimeUnits{492};
  cell.para.total_time = TimeUnits{1722};
  cell.para.cached_iprs = 9;
  cell.para.cache_bytes_used = Bytes{4096};
  cell.para.offchip_bytes_per_iteration = Bytes{512};
  cell.para.pe_utilization = 1.0 / 3.0;
  cell.para.residency_overcommit_bytes = Bytes{17};
  cell.sparta.scheduler = "SPARTA";
  cell.sparta.total_time = TimeUnits{2000};
  cell.sparta.pe_utilization = 0.25;

  const std::optional<CellResult> decoded =
      decode_cell_record(encode_cell_record(cell));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->index, 7U);
  EXPECT_EQ(decoded->status, CellStatus::kOk);
  EXPECT_EQ(decoded->energy_uj, cell.energy_uj);
  EXPECT_EQ(decoded->para.scheduler, "Para-CONV");
  EXPECT_EQ(decoded->para.iteration_time, cell.para.iteration_time);
  EXPECT_EQ(decoded->para.pe_utilization, cell.para.pe_utilization);
  EXPECT_EQ(decoded->para.residency_overcommit_bytes,
            cell.para.residency_overcommit_bytes);
  EXPECT_EQ(decoded->sparta.total_time, cell.sparta.total_time);

  CellResult failed;
  failed.index = 3;
  failed.status = CellStatus::kError;
  failed.error_code = "contract-violation";
  failed.error_message = "line one\nline two \\ with spaces";
  const std::optional<CellResult> decoded_error =
      decode_cell_record(encode_cell_record(failed));
  ASSERT_TRUE(decoded_error.has_value());
  EXPECT_EQ(decoded_error->status, CellStatus::kError);
  EXPECT_EQ(decoded_error->error_code, failed.error_code);
  EXPECT_EQ(decoded_error->error_message, failed.error_message);

  EXPECT_FALSE(decode_cell_record("cell 0 ok 1.5 truncated").has_value());
  EXPECT_FALSE(decode_cell_record("garbage").has_value());
}

// Any whitespace the token decoder splits on must be escaped on encode;
// a literal tab used to survive escaping and tear the record apart.
TEST(SweepFaultTest, CheckpointRecordsWithTabsRoundTrip) {
  CellResult failed;
  failed.index = 5;
  failed.status = CellStatus::kError;
  failed.error_code = "tab\there";
  failed.error_message = "col a\tcol b\r\n\ttrailing";
  const std::optional<CellResult> decoded =
      decode_cell_record(encode_cell_record(failed));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->error_code, failed.error_code);
  EXPECT_EQ(decoded->error_message, failed.error_message);
}

// A checkpoint that cannot reach disk must throw, not silently "succeed":
// /dev/full makes every write fail with ENOSPC.
TEST(SweepFaultTest, CheckpointWriterThrowsWhenTheDiskIsFull) {
  if (!std::ifstream("/dev/full").good()) {
    GTEST_SKIP() << "/dev/full not available on this platform";
  }
  EXPECT_THROW(CheckpointWriter("/dev/full", 1234, 3, std::nullopt),
               ContractViolation);
}

TEST(SweepFaultTest, ResumeAfterTruncationIsByteIdenticalAndSkipsDoneCells) {
  const GridSpec spec = healthy_grid();
  const std::string path = temp_path("resume.ckpt");
  std::remove(path.c_str());

  SweepOptions options;
  options.jobs = 1;
  options.seed = 9;
  const std::string uninterrupted = serialize(run_sweep(spec, options));

  options.checkpoint_path = path;
  run_sweep(spec, options);
  const std::string full = read_file(path);

  // Simulate a crash after two settled cells plus a torn third record.
  const std::size_t keep = offset_after_lines(full, 3);
  write_file(path, full.substr(0, keep + 10));

  options.resume = true;
  const SweepResult resumed = run_sweep(spec, options);
  EXPECT_EQ(resumed.cells_resumed, 2U);
  EXPECT_EQ(resumed.cells_ok, 4U);
  EXPECT_EQ(resumed.cells_failed, 0U);
  EXPECT_EQ(serialize(resumed), uninterrupted);

  // The torn line was truncated away and the missing cells re-appended: a
  // second resume finds every cell settled and evaluates nothing.
  const SweepResult settled = run_sweep(spec, options);
  EXPECT_EQ(settled.cells_resumed, 4U);
  EXPECT_EQ(serialize(settled), uninterrupted);
}

TEST(SweepFaultTest, ResumeReEvaluatesErroredCellsOnly) {
  const GridSpec spec = faulty_grid();
  const std::string path = temp_path("resume_error.ckpt");
  std::remove(path.c_str());

  SweepOptions options;
  options.jobs = 1;
  options.checkpoint_path = path;
  const std::string first = serialize(run_sweep(spec, options));

  // Error records never mark a cell done: only the broken cell re-runs.
  options.resume = true;
  const SweepResult resumed = run_sweep(spec, options);
  EXPECT_EQ(resumed.cells_resumed, 2U);
  EXPECT_EQ(resumed.cells_failed, 1U);
  EXPECT_EQ(serialize(resumed), first);
}

TEST(SweepFaultTest, ResumeRejectsACheckpointFromADifferentSweep) {
  const GridSpec spec = healthy_grid();
  const std::string path = temp_path("mismatch.ckpt");
  std::remove(path.c_str());

  SweepOptions options;
  options.jobs = 1;
  options.seed = 1;
  options.checkpoint_path = path;
  run_sweep(spec, options);

  options.resume = true;
  options.seed = 2;  // different per-cell seeds => different sweep
  EXPECT_THROW(run_sweep(spec, options), ContractViolation);
}

/// Writes a one-cell checkpoint for `spec`, then rewrites its header line
/// to `header` and returns the path.
std::string checkpoint_with_header(const GridSpec& spec,
                                   const SweepOptions& options,
                                   const std::string& header,
                                   const char* name) {
  const std::string path = temp_path(name);
  std::remove(path.c_str());
  SweepOptions run = options;
  run.checkpoint_path = path;
  run_sweep(spec, run);
  const std::string contents = read_file(path);
  const std::size_t newline = contents.find('\n');
  EXPECT_NE(newline, std::string::npos);
  write_file(path, header + contents.substr(newline));
  return path;
}

// The loader parses header *fields* and reports exactly which one
// disagrees — a resume against the wrong file tells the operator whether
// they grabbed a non-checkpoint, an old format, or another sweep's file.
TEST(SweepFaultTest, CheckpointHeaderMismatchesAreTypedPerField) {
  const GridSpec spec = healthy_grid();
  SweepOptions options;
  options.jobs = 1;
  const std::uint64_t fingerprint = sweep_fingerprint(spec, options);
  const std::size_t cells = spec.cell_count();
  const std::string fp = std::to_string(fingerprint);

  const struct {
    const char* name;
    std::string header;
    CheckpointField field;
  } cases[] = {
      {"magic.ckpt", "not-a-checkpoint 1 " + fp + " 4",
       CheckpointField::kMagic},
      {"version.ckpt", "paraconv-sweep-checkpoint 99 " + fp + " 4",
       CheckpointField::kVersion},
      {"fingerprint.ckpt", "paraconv-sweep-checkpoint 1 12345 4",
       CheckpointField::kFingerprint},
      {"cells.ckpt", "paraconv-sweep-checkpoint 1 " + fp + " 5",
       CheckpointField::kCells},
  };
  for (const auto& c : cases) {
    const std::string path =
        checkpoint_with_header(spec, options, c.header, c.name);
    try {
      load_checkpoint(path, fingerprint, cells);
      FAIL() << c.name << ": expected CheckpointMismatch";
    } catch (const CheckpointMismatch& mismatch) {
      EXPECT_EQ(mismatch.field(), c.field) << c.name;
      EXPECT_NE(std::string(mismatch.what()).find(to_string(c.field)),
                std::string::npos)
          << c.name;
    }
  }
}

// Value comparison, not exact string compare: benign formatting drift
// (extra spaces, trailing annotations) still names the same sweep.
TEST(SweepFaultTest, CheckpointHeaderToleratesBenignFormattingDrift) {
  const GridSpec spec = healthy_grid();
  SweepOptions options;
  options.jobs = 1;
  const std::uint64_t fingerprint = sweep_fingerprint(spec, options);
  const std::string drifted = "paraconv-sweep-checkpoint   1  " +
                              std::to_string(fingerprint) + "  " +
                              std::to_string(spec.cell_count()) +
                              "  written-by:worker-3";
  const std::string path =
      checkpoint_with_header(spec, options, drifted, "drift.ckpt");
  const CheckpointLoad load =
      load_checkpoint(path, fingerprint, spec.cell_count());
  EXPECT_TRUE(load.file_found);
  EXPECT_EQ(load.records_read, spec.cell_count());
}

TEST(SweepFaultTest, ResumeWithoutACheckpointPathIsRejected) {
  SweepOptions options;
  options.resume = true;
  EXPECT_THROW(run_sweep(healthy_grid(), options), ContractViolation);
}

TEST(SweepFaultTest, ResumeWithAMissingFileIsAFullRun) {
  const GridSpec spec = healthy_grid();
  const std::string path = temp_path("fresh.ckpt");
  std::remove(path.c_str());

  SweepOptions plain;
  plain.jobs = 1;
  SweepOptions options = plain;
  options.checkpoint_path = path;
  options.resume = true;
  const SweepResult sweep = run_sweep(spec, options);
  EXPECT_EQ(sweep.cells_resumed, 0U);
  EXPECT_EQ(sweep.cells_ok, spec.cell_count());
  EXPECT_EQ(serialize(sweep), serialize(run_sweep(spec, plain)));
}

TEST(SweepFaultTest, FingerprintIgnoresExecutionKnobs) {
  const GridSpec spec = healthy_grid();
  SweepOptions a;
  a.jobs = 1;
  SweepOptions b;
  b.jobs = 8;
  b.fail_fast = true;
  b.checkpoint_path = "elsewhere.ckpt";
  EXPECT_EQ(sweep_fingerprint(spec, a), sweep_fingerprint(spec, b));

  SweepOptions reseeded = a;
  reseeded.seed = 99;
  EXPECT_NE(sweep_fingerprint(spec, a), sweep_fingerprint(spec, reseeded));

  GridSpec regrided = healthy_grid();
  regrided.iterations += 1;
  EXPECT_NE(sweep_fingerprint(spec, a), sweep_fingerprint(regrided, a));
}

}  // namespace
}  // namespace paraconv::dse
