#include "dse/sweep.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "dse/frontier.hpp"
#include "graph/paper_benchmarks.hpp"

namespace paraconv::dse {
namespace {

// A small but real grid: two paper benchmarks x two PE counts x two
// allocators x two packers, enough cells (16) to keep eight workers busy.
GridSpec small_grid() {
  GridSpec spec;
  spec.iterations = 10;
  for (const char* name : {"cat", "flower"}) {
    spec.cases.push_back(
        {name, graph::build_paper_benchmark(graph::paper_benchmark(name))});
  }
  spec.configs = {pim::PimConfig::neurocube(8), pim::PimConfig::neurocube(16)};
  spec.packers = {core::PackerKind::kTopological, core::PackerKind::kLpt};
  spec.allocators = {core::AllocatorKind::kKnapsackDp,
                     core::AllocatorKind::kGreedyDeadline};
  return spec;
}

std::string serialize(const SweepResult& sweep) {
  std::ostringstream csv;
  write_sweep_csv(csv, sweep);
  return csv.str() + "\n---\n" + sweep_to_json(sweep).dump(/*pretty=*/true);
}

TEST(SweepDeterminismTest, GridEnumerationIsCaseMajorAllocatorMinor) {
  const GridSpec spec = small_grid();
  EXPECT_EQ(spec.cell_count(), 16U);
  const GridSpec::Coordinates first = spec.coordinates(0);
  EXPECT_EQ(first.case_index, 0U);
  EXPECT_EQ(first.allocator_index, 0U);
  const GridSpec::Coordinates second = spec.coordinates(1);
  EXPECT_EQ(second.case_index, 0U);
  EXPECT_EQ(second.config_index, 0U);
  EXPECT_EQ(second.packer_index, 0U);
  EXPECT_EQ(second.allocator_index, 1U);
  const GridSpec::Coordinates last = spec.coordinates(15);
  EXPECT_EQ(last.case_index, 1U);
  EXPECT_EQ(last.config_index, 1U);
  EXPECT_EQ(last.packer_index, 1U);
  EXPECT_EQ(last.allocator_index, 1U);
}

TEST(SweepDeterminismTest, ParallelSweepIsByteIdenticalToSerial) {
  const GridSpec spec = small_grid();

  SweepOptions serial;
  serial.jobs = 1;
  serial.seed = 7;
  const SweepResult a = run_sweep(spec, serial);

  SweepOptions parallel = serial;
  parallel.jobs = 8;
  const SweepResult b = run_sweep(spec, parallel);

  ASSERT_EQ(a.cells.size(), spec.cell_count());
  ASSERT_EQ(b.cells.size(), spec.cell_count());
  EXPECT_EQ(serialize(a), serialize(b));

  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].index, i);
    EXPECT_EQ(a.cells[i].cell_seed, b.cells[i].cell_seed);
    EXPECT_EQ(a.cells[i].para.total_time, b.cells[i].para.total_time);
    EXPECT_EQ(a.cells[i].sparta.total_time, b.cells[i].sparta.total_time);
  }
}

TEST(SweepDeterminismTest, RefinementStaysDeterministicUnderParallelism) {
  GridSpec spec = small_grid();
  spec.refine_steps = 32;  // exercises the per-cell seeded move generator

  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions parallel;
  parallel.jobs = 8;
  EXPECT_EQ(serialize(run_sweep(spec, serial)),
            serialize(run_sweep(spec, parallel)));
}

TEST(SweepDeterminismTest, CellSeedDependsOnSweepSeedAndIndex) {
  EXPECT_NE(cell_seed(0, 0), cell_seed(0, 1));
  EXPECT_NE(cell_seed(0, 0), cell_seed(1, 0));
  EXPECT_EQ(cell_seed(42, 17), cell_seed(42, 17));
}

TEST(SweepDeterminismTest, AllocatorAblationHitsTheMemoCache) {
  const GridSpec spec = small_grid();
  const SweepResult sweep = run_sweep(spec, SweepOptions{.jobs = 1});
  // Two allocators per (case, config, packer) prefix: the second is always
  // a hit, so exactly half the lookups hit and each prefix packs once.
  EXPECT_EQ(sweep.cache_stats.misses, 8U);
  EXPECT_EQ(sweep.cache_stats.hits, 8U);
  EXPECT_EQ(sweep.cache_stats.entries, 8U);
  EXPECT_GT(sweep.cache_stats.hit_rate(), 0.0);
}

TEST(SweepDeterminismTest, MemoizedCellsMatchUncachedScheduling) {
  const GridSpec spec = small_grid();
  const SweepResult sweep = run_sweep(spec, SweepOptions{.jobs = 1});
  for (const CellResult& cell : sweep.cells) {
    core::ParaConvOptions options;
    options.iterations = spec.iterations;
    options.allocator = cell.allocator;
    options.packer = cell.packer;
    const GridSpec::Coordinates at = spec.coordinates(cell.index);
    const core::ParaConvResult direct =
        core::ParaConv(cell.config, options)
            .schedule(spec.cases[at.case_index].graph);
    EXPECT_EQ(direct.metrics.total_time, cell.para.total_time);
    EXPECT_EQ(direct.metrics.r_max, cell.para.r_max);
    EXPECT_EQ(direct.metrics.cached_iprs, cell.para.cached_iprs);
  }
}

TEST(SweepDeterminismTest, PaperGridMatchesTheEvaluationShape) {
  const GridSpec spec = paper_grid({16, 32, 64}, 10);
  EXPECT_EQ(spec.cases.size(), 12U);
  EXPECT_EQ(spec.configs.size(), 3U);
  EXPECT_EQ(spec.cell_count(), 36U);
  EXPECT_EQ(spec.cases.front().name, "cat");
  EXPECT_EQ(spec.cases.back().name, "protein");
}

TEST(SweepDeterminismTest, FrontierIsExactlyTheNonDominatedSet) {
  const GridSpec spec = small_grid();
  const SweepResult sweep = run_sweep(spec, SweepOptions{.jobs = 2});
  const std::vector<std::size_t> frontier = pareto_frontier(sweep.cells);
  ASSERT_FALSE(frontier.empty());

  const auto dominates = [](const CellResult& x, const CellResult& y) {
    return x.para.iteration_time <= y.para.iteration_time &&
           x.para.r_max <= y.para.r_max && x.energy_uj <= y.energy_uj &&
           (x.para.iteration_time < y.para.iteration_time ||
            x.para.r_max < y.para.r_max || x.energy_uj < y.energy_uj);
  };
  std::vector<bool> on_frontier(sweep.cells.size(), false);
  for (const std::size_t index : frontier) on_frontier[index] = true;
  for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < sweep.cells.size(); ++j) {
      if (j != i && dominates(sweep.cells[j], sweep.cells[i])) {
        dominated = true;
        break;
      }
    }
    EXPECT_EQ(on_frontier[i], !dominated) << "cell " << i;
  }
}

TEST(SweepDeterminismTest, SweepWithoutBaselineSkipsSparta) {
  GridSpec spec = small_grid();
  spec.allocators = {core::AllocatorKind::kKnapsackDp};
  SweepOptions options;
  options.with_baseline = false;
  const SweepResult sweep = run_sweep(spec, options);
  for (const CellResult& cell : sweep.cells) {
    EXPECT_EQ(cell.sparta.total_time.value, 0);
    EXPECT_GT(cell.para.total_time.value, 0);
  }
}

}  // namespace
}  // namespace paraconv::dse
