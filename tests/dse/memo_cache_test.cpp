#include "dse/memo_cache.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "graph/paper_benchmarks.hpp"

namespace paraconv::dse {
namespace {

graph::TaskGraph benchmark_graph(const std::string& name) {
  return graph::build_paper_benchmark(graph::paper_benchmark(name));
}

core::PackedSchedule packed_with_period(std::int64_t period) {
  core::PackedSchedule packed;
  packed.packing.period = TimeUnits{period};
  return packed;
}

TEST(MemoCacheTest, FingerprintIsStableAndStructural) {
  const graph::TaskGraph a = benchmark_graph("cat");
  const graph::TaskGraph b = benchmark_graph("cat");
  EXPECT_EQ(graph_fingerprint(a), graph_fingerprint(b));
  EXPECT_NE(graph_fingerprint(a), graph_fingerprint(benchmark_graph("car")));

  // The name is presentation, not structure.
  graph::TaskGraph renamed = benchmark_graph("cat");
  renamed.set_name("completely-different");
  EXPECT_EQ(graph_fingerprint(a), graph_fingerprint(renamed));

  // A changed IPR size is structure.
  graph::TaskGraph g("tiny");
  const auto t0 = g.add_task({"a", graph::TaskKind::kConvolution,
                              TimeUnits{1}});
  const auto t1 = g.add_task({"b", graph::TaskKind::kConvolution,
                              TimeUnits{1}});
  g.add_ipr(t0, t1, Bytes{64});
  graph::TaskGraph h("tiny");
  const auto u0 = h.add_task({"a", graph::TaskKind::kConvolution,
                              TimeUnits{1}});
  const auto u1 = h.add_task({"b", graph::TaskKind::kConvolution,
                              TimeUnits{1}});
  h.add_ipr(u0, u1, Bytes{65});
  EXPECT_NE(graph_fingerprint(g), graph_fingerprint(h));
}

TEST(MemoCacheTest, DistinctConfigsNeverCollide) {
  const graph::TaskGraph g = benchmark_graph("cat");
  const pim::PimConfig c16 = pim::PimConfig::neurocube(16);
  pim::PimConfig c16_big_cache = c16;
  c16_big_cache.pe_cache_bytes = Bytes{64 * 1024};
  pim::PimConfig c16_slow_edram = c16;
  c16_slow_edram.edram_bytes_per_unit /= 2;

  const std::vector<PackingKey> keys{
      make_packing_key(g, c16, core::PackerKind::kTopological, 0, 0),
      make_packing_key(g, pim::PimConfig::neurocube(32),
                       core::PackerKind::kTopological, 0, 0),
      make_packing_key(g, c16_big_cache, core::PackerKind::kTopological, 0,
                       0),
      make_packing_key(g, c16_slow_edram, core::PackerKind::kTopological, 0,
                       0),
      make_packing_key(g, c16, core::PackerKind::kLpt, 0, 0),
      make_packing_key(g, c16, core::PackerKind::kTopological, 8, 0),
      make_packing_key(benchmark_graph("car"), c16,
                       core::PackerKind::kTopological, 0, 0),
  };
  MemoCache cache;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    for (std::size_t j = i + 1; j < keys.size(); ++j) {
      EXPECT_FALSE(keys[i] == keys[j]) << "keys " << i << "/" << j;
    }
    cache.insert(keys[i], packed_with_period(static_cast<std::int64_t>(i)));
  }
  EXPECT_EQ(cache.stats().entries, keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const MemoCache::Value value = cache.find(keys[i]);
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(value->packing.period.value, static_cast<std::int64_t>(i));
  }
}

TEST(MemoCacheTest, RefineSeedOnlyKeyedWhenRefining) {
  const graph::TaskGraph g = benchmark_graph("cat");
  const pim::PimConfig config = pim::PimConfig::neurocube(16);
  // refine_steps == 0 never consults the seed, so the key ignores it...
  EXPECT_EQ(
      make_packing_key(g, config, core::PackerKind::kTopological, 0, 1),
      make_packing_key(g, config, core::PackerKind::kTopological, 0, 2));
  // ...but with refinement enabled the seed changes the packing.
  EXPECT_FALSE(
      make_packing_key(g, config, core::PackerKind::kTopological, 8, 1) ==
      make_packing_key(g, config, core::PackerKind::kTopological, 8, 2));
}

TEST(MemoCacheTest, HitMissAccounting) {
  MemoCache cache;
  const PackingKey key = make_packing_key(
      benchmark_graph("cat"), pim::PimConfig::neurocube(16),
      core::PackerKind::kTopological, 0, 0);
  EXPECT_EQ(cache.find(key), nullptr);
  cache.insert(key, packed_with_period(5));
  EXPECT_NE(cache.find(key), nullptr);
  EXPECT_NE(cache.find(key), nullptr);

  const MemoCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1U);
  EXPECT_EQ(stats.hits, 2U);
  EXPECT_EQ(stats.entries, 1U);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 2.0 / 3.0);

  cache.clear();
  const MemoCache::Stats cleared = cache.stats();
  EXPECT_EQ(cleared.hits, 0U);
  EXPECT_EQ(cleared.misses, 0U);
  EXPECT_EQ(cleared.entries, 0U);
  EXPECT_DOUBLE_EQ(cleared.hit_rate(), 0.0);
}

TEST(MemoCacheTest, FirstInsertWinsAndGetOrComputeComputesOnce) {
  MemoCache cache;
  const PackingKey key = make_packing_key(
      benchmark_graph("cat"), pim::PimConfig::neurocube(16),
      core::PackerKind::kTopological, 0, 0);
  const MemoCache::Value first = cache.insert(key, packed_with_period(1));
  const MemoCache::Value second = cache.insert(key, packed_with_period(2));
  EXPECT_EQ(first, second);
  EXPECT_EQ(second->packing.period.value, 1);

  int computes = 0;
  const auto compute = [&computes] {
    ++computes;
    return core::PackedSchedule{};
  };
  cache.get_or_compute(key, compute);
  EXPECT_EQ(computes, 0);  // resident

  MemoCache fresh;
  fresh.get_or_compute(key, compute);
  fresh.get_or_compute(key, compute);
  EXPECT_EQ(computes, 1);
}

TEST(MemoCacheTest, ConcurrentMixedAccessIsSafe) {
  const graph::TaskGraph g = benchmark_graph("cat");
  constexpr int kThreads = 8;
  constexpr int kKeysPerThread = 64;
  std::vector<PackingKey> keys;
  for (int i = 0; i < kKeysPerThread; ++i) {
    // Distinct PE counts make distinct keys spread across shards.
    keys.push_back(make_packing_key(g, pim::PimConfig::neurocube(i + 1),
                                    core::PackerKind::kTopological, 0, 0));
  }

  MemoCache cache(/*shard_count=*/4);
  std::vector<std::jthread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &keys, t] {
      for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < kKeysPerThread; ++i) {
          const PackingKey& key = keys[static_cast<std::size_t>(i)];
          if ((t + round + i) % 3 == 0) {
            cache.insert(key, packed_with_period(i));
          } else {
            const MemoCache::Value value = cache.find(key);
            if (value != nullptr) {
              EXPECT_EQ(value->packing.period.value, i);
            }
          }
        }
      }
    });
  }
  threads.clear();  // join

  const MemoCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, static_cast<std::uint64_t>(kKeysPerThread));
  for (int i = 0; i < kKeysPerThread; ++i) {
    const MemoCache::Value value =
        cache.find(keys[static_cast<std::size_t>(i)]);
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(value->packing.period.value, i);
  }
}

}  // namespace
}  // namespace paraconv::dse
