#include <gtest/gtest.h>

#include "core/para_conv.hpp"
#include "graph/paper_benchmarks.hpp"
#include "pim/config.hpp"
#include "pim/machine.hpp"
#include "retiming/delta.hpp"
#include "sched/packer.hpp"
#include "sched/validator.hpp"

namespace paraconv::pim {
namespace {

PimConfig with_topology(NocTopology topology, int pes = 16) {
  PimConfig cfg = PimConfig::neurocube(pes);
  cfg.topology = topology;
  cfg.noc_hop_units = 2;
  return cfg;
}

TEST(TopologyTest, CrossbarHopsAreUniform) {
  const PimConfig cfg = with_topology(NocTopology::kCrossbar, 64);
  EXPECT_EQ(cfg.hop_count(0, 0), 0);
  EXPECT_EQ(cfg.hop_count(0, 1), 1);
  EXPECT_EQ(cfg.hop_count(0, 63), 1);
  EXPECT_EQ(cfg.noc_latency(0, 63), TimeUnits{0});  // folded into base time
}

TEST(TopologyTest, MeshUsesManhattanDistance) {
  // 16 PEs -> 4x4 mesh.
  const PimConfig cfg = with_topology(NocTopology::kMesh2D, 16);
  EXPECT_EQ(cfg.hop_count(0, 0), 0);
  EXPECT_EQ(cfg.hop_count(0, 1), 1);    // (0,0) -> (1,0)
  EXPECT_EQ(cfg.hop_count(0, 5), 2);    // (0,0) -> (1,1)
  EXPECT_EQ(cfg.hop_count(0, 15), 6);   // (0,0) -> (3,3)
  EXPECT_EQ(cfg.hop_count(3, 12), 6);   // corners swap
  EXPECT_EQ(cfg.noc_latency(0, 15), TimeUnits{12});  // 6 hops x 2 units
}

// Reference mesh distance: BFS over the explicit neighbor graph of a
// width-wide grid holding pe_count PEs (last row possibly partial). This is
// deliberately independent of the closed-form Manhattan computation.
std::vector<int> mesh_bfs(int pe_count, int width, int src) {
  std::vector<int> dist(static_cast<std::size_t>(pe_count), -1);
  std::vector<int> queue{src};
  dist[static_cast<std::size_t>(src)] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const int pe = queue[head];
    const int x = pe % width;
    const int y = pe / width;
    const auto visit = [&](int nx, int ny) {
      const int neighbor = ny * width + nx;
      if (nx < 0 || nx >= width || ny < 0 || neighbor >= pe_count) return;
      if (dist[static_cast<std::size_t>(neighbor)] != -1) return;
      dist[static_cast<std::size_t>(neighbor)] =
          dist[static_cast<std::size_t>(pe)] + 1;
      queue.push_back(neighbor);
    };
    visit(x - 1, y);
    visit(x + 1, y);
    visit(x, y - 1);
    visit(x, y + 1);
  }
  return dist;
}

TEST(TopologyTest, MeshHopsMatchBfsOnSquareAndRaggedGrids) {
  // Property check across square (16), ragged (12, 23) and prime (17)
  // PE counts: the closed-form hop_count must equal BFS distance on the
  // actual grid for every ordered PE pair. This pins the exact integer
  // ceil-sqrt width — a float sqrt that rounds low widens every distance.
  for (const int pe_count : {1, 2, 12, 16, 17, 23, 25}) {
    PimConfig cfg;
    cfg.pe_count = pe_count;
    cfg.topology = NocTopology::kMesh2D;
    int width = 1;
    while (width * width < pe_count) ++width;
    for (int src = 0; src < pe_count; ++src) {
      const std::vector<int> dist = mesh_bfs(pe_count, width, src);
      for (int dst = 0; dst < pe_count; ++dst) {
        EXPECT_EQ(cfg.hop_count(src, dst), dist[static_cast<std::size_t>(dst)])
            << "pe_count " << pe_count << " src " << src << " dst " << dst;
      }
    }
  }
}

TEST(TopologyTest, MeshWidthIsExactForLargePerfectSquares) {
  // 1024^2 PEs: double-precision sqrt can land just below 1024 and a
  // naive ceil would widen the mesh to 1025, shrinking every hop count.
  PimConfig cfg;
  cfg.pe_count = 1024 * 1024;
  cfg.topology = NocTopology::kMesh2D;
  // Opposite corners of the exact 1024-wide grid: 2 * (1024 - 1) hops.
  EXPECT_EQ(cfg.hop_count(0, cfg.pe_count - 1), 2 * 1023);
  // One step along the top row.
  EXPECT_EQ(cfg.hop_count(0, 1), 1);
  // First PE of the second row is one vertical hop away.
  EXPECT_EQ(cfg.hop_count(0, 1024), 1);
}

TEST(TopologyTest, RingUsesShorterArc) {
  const PimConfig cfg = with_topology(NocTopology::kRing, 16);
  EXPECT_EQ(cfg.hop_count(0, 1), 1);
  EXPECT_EQ(cfg.hop_count(0, 8), 8);
  EXPECT_EQ(cfg.hop_count(0, 15), 1);  // wraps around
  EXPECT_EQ(cfg.hop_count(2, 14), 4);
}

TEST(TopologyTest, InvalidPesRejected) {
  const PimConfig cfg = with_topology(NocTopology::kMesh2D, 16);
  EXPECT_THROW(cfg.hop_count(-1, 0), ContractViolation);
  EXPECT_THROW(cfg.hop_count(0, 16), ContractViolation);
}

TEST(TopologyTest, Names) {
  EXPECT_STREQ(to_string(NocTopology::kCrossbar), "crossbar");
  EXPECT_STREQ(to_string(NocTopology::kMesh2D), "mesh2d");
  EXPECT_STREQ(to_string(NocTopology::kRing), "ring");
}

class TopologyPipelineTest : public testing::TestWithParam<NocTopology> {};

TEST_P(TopologyPipelineTest, SchedulesValidateAndReplayCleanly) {
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark("character-1"));
  const PimConfig cfg = with_topology(GetParam(), 32);
  const core::ParaConvResult r = core::ParaConv(cfg).schedule(g);

  EXPECT_TRUE(sched::is_valid_kernel_schedule(g, r.kernel, cfg,
                                              cfg.total_cache_bytes()));
  Machine machine(cfg);
  const MachineStats stats =
      machine.run(g, r.kernel, {.iterations = 4, .strict = true});
  EXPECT_EQ(stats.readiness_violations, 0);
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, TopologyPipelineTest,
                         testing::Values(NocTopology::kCrossbar,
                                         NocTopology::kMesh2D,
                                         NocTopology::kRing),
                         [](const testing::TestParamInfo<NocTopology>& param_info) {
                           return to_string(param_info.param);
                         });

TEST(TopologyTest, SlowerNetworksNeverReduceEdgeDeltas) {
  // Hop latency only adds to hand-off times, so on the identical packing
  // every per-edge required distance under mesh/ring dominates the
  // crossbar's, for both allocation sites.
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark("stock-predict"));
  const sched::Packing packing = sched::pack_topological(g, 32);

  const auto deltas_for = [&](NocTopology topology) {
    return retiming::compute_edge_deltas(g, packing.placement, packing.period,
                                         with_topology(topology, 32));
  };
  const auto crossbar = deltas_for(NocTopology::kCrossbar);
  for (const NocTopology slower : {NocTopology::kMesh2D, NocTopology::kRing}) {
    const auto deltas = deltas_for(slower);
    for (std::size_t e = 0; e < deltas.size(); ++e) {
      EXPECT_GE(deltas[e].cache, crossbar[e].cache);
      EXPECT_GE(deltas[e].edram, crossbar[e].edram);
    }
  }
}

}  // namespace
}  // namespace paraconv::pim
