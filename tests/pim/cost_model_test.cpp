// Pluggable cost models: the constant model must be observationally
// identical to PimConfig::transfer_time, and the banked model must keep
// transfer times equal (so schedules never change) while diagnosing eDRAM
// bank contention from a request trace.
#include "pim/cost_model.hpp"

#include <gtest/gtest.h>

#include "pim/config.hpp"

namespace paraconv::pim {
namespace {

PimConfig banked_config(int vaults, int banks, BankPolicy policy) {
  PimConfig cfg;
  cfg.cost_model = CostModelKind::kBanked;
  cfg.vault_count = vaults;
  cfg.edram_banks = banks;
  cfg.bank_policy = policy;
  return cfg;
}

TransferRequest edram_request(std::uint32_t key, std::int64_t start,
                              std::int64_t bytes) {
  TransferRequest req;
  req.start = start;
  req.size = Bytes{bytes};
  req.site = AllocSite::kEdram;
  req.key = key;
  return req;
}

TEST(CostModelTest, FactoryRespectsConfiguredKind) {
  PimConfig cfg;
  EXPECT_EQ(make_cost_model(cfg)->kind(), CostModelKind::kConstant);
  cfg.cost_model = CostModelKind::kBanked;
  EXPECT_EQ(make_cost_model(cfg)->kind(), CostModelKind::kBanked);
}

TEST(CostModelTest, BankedTransferTimeMatchesConstant) {
  // The keystone invariant: a transfer owns one bank at full vault
  // bandwidth, so per-transfer latency is the constant model's and the
  // banked model can never perturb packing, retiming or allocation.
  const PimConfig constant_cfg;
  const PimConfig banked_cfg =
      banked_config(16, 8, BankPolicy::kInterleave);
  const auto constant = make_cost_model(constant_cfg);
  const auto banked = make_cost_model(banked_cfg);
  for (const std::int64_t size : {0, 1, 511, 512, 513, 4096, 65536}) {
    for (const AllocSite site : {AllocSite::kCache, AllocSite::kEdram}) {
      EXPECT_EQ(banked->transfer_time(site, Bytes{size}),
                constant->transfer_time(site, Bytes{size}))
          << "site " << to_string(site) << " size " << size;
    }
  }
}

TEST(CostModelTest, ConstantContentionIsAllZero) {
  const PimConfig cfg;
  const auto model = make_cost_model(cfg);
  const BankStats stats = model->contention(
      {edram_request(0, 0, 2048), edram_request(16, 0, 2048)});
  EXPECT_EQ(stats.banks, 0);
  EXPECT_EQ(stats.conflicts, 0);
  EXPECT_EQ(stats.stall_units, 0);
  EXPECT_EQ(stats.peak_occupancy, 0);
}

TEST(CostModelTest, SameBankOverlapIsConflictSerialized) {
  // One vault, four banks, interleave: keys 0 and 4 are streams 0 and 4,
  // both landing on bank 0. 2048 B at 512 B/unit = 4 units each; the
  // second arrives at t=2 while the first occupies [0,4) and must wait 2.
  const PimConfig cfg = banked_config(1, 4, BankPolicy::kInterleave);
  const auto model = make_cost_model(cfg);
  const BankStats stats = model->contention(
      {edram_request(0, 0, 2048), edram_request(4, 2, 2048)});
  EXPECT_EQ(stats.banks, 4);
  EXPECT_EQ(stats.conflicts, 1);
  EXPECT_EQ(stats.stall_units, 2);
  EXPECT_EQ(stats.peak_occupancy, 2);
}

TEST(CostModelTest, DifferentBanksOverlapFreely) {
  // Streams 0 and 1 interleave onto banks 0 and 1: fully concurrent.
  const PimConfig cfg = banked_config(1, 4, BankPolicy::kInterleave);
  const auto model = make_cost_model(cfg);
  const BankStats stats = model->contention(
      {edram_request(0, 0, 2048), edram_request(1, 0, 2048)});
  EXPECT_EQ(stats.conflicts, 0);
  EXPECT_EQ(stats.stall_units, 0);
  EXPECT_EQ(stats.peak_occupancy, 1);
}

TEST(CostModelTest, DifferentVaultsNeverConflict) {
  // Keys 0 and 1 on two vaults map to distinct global banks even with one
  // bank per vault.
  const PimConfig cfg = banked_config(2, 1, BankPolicy::kInterleave);
  const auto model = make_cost_model(cfg);
  const BankStats stats = model->contention(
      {edram_request(0, 0, 2048), edram_request(1, 0, 2048)});
  EXPECT_EQ(stats.conflicts, 0);
  EXPECT_EQ(stats.peak_occupancy, 1);
}

TEST(CostModelTest, BackToBackIsNotAConflict) {
  // The second transfer starts exactly when the first finishes: no stall,
  // and the peak-occupancy sweep must not read the touching endpoints as
  // an overlap (ends sort before starts).
  const PimConfig cfg = banked_config(1, 4, BankPolicy::kInterleave);
  const auto model = make_cost_model(cfg);
  const BankStats stats = model->contention(
      {edram_request(0, 0, 2048), edram_request(4, 4, 2048)});
  EXPECT_EQ(stats.conflicts, 0);
  EXPECT_EQ(stats.stall_units, 0);
  EXPECT_EQ(stats.peak_occupancy, 1);
}

TEST(CostModelTest, CacheAndZeroSizeRequestsAreIgnored) {
  const PimConfig cfg = banked_config(1, 4, BankPolicy::kInterleave);
  const auto model = make_cost_model(cfg);
  TransferRequest cache_hit = edram_request(0, 0, 2048);
  cache_hit.site = AllocSite::kCache;
  const BankStats stats = model->contention(
      {cache_hit, edram_request(4, 0, 0), edram_request(8, 0, 0)});
  EXPECT_EQ(stats.banks, 4);
  EXPECT_EQ(stats.conflicts, 0);
  EXPECT_EQ(stats.stall_units, 0);
  EXPECT_EQ(stats.peak_occupancy, 0);
}

TEST(CostModelTest, BlockPolicyGroupsContiguousStreams) {
  // Four streams on two banks. Block mapping packs contiguous halves
  // together ({0,1} -> bank 0, {2,3} -> bank 1), so the overlapping pair
  // {0,1} serializes; interleaving alternates them onto separate banks.
  // Streams 2 and 3 run far later and never overlap anything — they exist
  // to pin the stream-space extent the block partition divides by.
  const std::vector<TransferRequest> trace = {
      edram_request(0, 0, 2048), edram_request(1, 0, 2048),
      edram_request(2, 100, 2048), edram_request(3, 200, 2048)};
  const PimConfig block = banked_config(1, 2, BankPolicy::kBlock);
  const BankStats blocked = make_cost_model(block)->contention(trace);
  EXPECT_EQ(blocked.conflicts, 1);
  EXPECT_EQ(blocked.stall_units, 4);

  const PimConfig interleave =
      banked_config(1, 2, BankPolicy::kInterleave);
  const BankStats spread = make_cost_model(interleave)->contention(trace);
  EXPECT_EQ(spread.conflicts, 0);
  EXPECT_EQ(spread.stall_units, 0);
}

TEST(CostModelTest, MoreBanksNeverAddConflicts) {
  // Widening the banked structure on a fixed trace can only shed
  // conflicts: with interleaving, streams that collided at B banks may
  // separate at 2B, never the reverse for this synthetic burst.
  std::vector<TransferRequest> burst;
  for (std::uint32_t stream = 0; stream < 16; ++stream) {
    burst.push_back(edram_request(stream, 0, 2048));
  }
  std::int64_t previous = -1;
  for (const int banks : {1, 2, 4, 8, 16}) {
    const PimConfig cfg = banked_config(1, banks, BankPolicy::kInterleave);
    const BankStats stats = make_cost_model(cfg)->contention(burst);
    if (previous >= 0) {
      EXPECT_LE(stats.conflicts, previous);
    }
    previous = stats.conflicts;
  }
  EXPECT_EQ(previous, 0);  // 16 streams on 16 banks: fully parallel
}

TEST(CostModelTest, TokenRoundTrips) {
  for (const CostModelKind kind :
       {CostModelKind::kConstant, CostModelKind::kBanked}) {
    const std::optional<CostModelKind> decoded =
        cost_model_kind_from_string(to_string(kind));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, kind);
  }
  for (const BankPolicy policy :
       {BankPolicy::kInterleave, BankPolicy::kBlock}) {
    const std::optional<BankPolicy> decoded =
        bank_policy_from_string(to_string(policy));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, policy);
  }
  EXPECT_FALSE(cost_model_kind_from_string("bankedd").has_value());
  EXPECT_FALSE(bank_policy_from_string("random").has_value());
}

TEST(CostModelTest, ValidateRejectsZeroBanks) {
  PimConfig cfg;
  cfg.edram_banks = 0;
  EXPECT_THROW(cfg.validate(), ContractViolation);
}

}  // namespace
}  // namespace paraconv::pim
