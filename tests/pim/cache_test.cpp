#include "pim/cache.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "common/rng.hpp"

namespace paraconv::pim {
namespace {

/// Trivially-correct LRU reference: ordered deque of (block, size), front =
/// most recent, linear scans everywhere.
class ReferenceLru {
 public:
  explicit ReferenceLru(Bytes capacity) : capacity_(capacity) {}

  bool access(std::uint64_t block) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == block) {
        const auto entry = *it;
        entries_.erase(it);
        entries_.push_front(entry);
        return true;
      }
    }
    return false;
  }

  bool insert(std::uint64_t block, Bytes size) {
    if (size > capacity_) return false;
    erase(block);
    while (used_ + size.value > capacity_.value) {
      used_ -= entries_.back().second.value;
      entries_.pop_back();
    }
    entries_.emplace_front(block, size);
    used_ += size.value;
    return true;
  }

  void erase(std::uint64_t block) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == block) {
        used_ -= it->second.value;
        entries_.erase(it);
        return;
      }
    }
  }

  bool contains(std::uint64_t block) const {
    for (const auto& [b, s] : entries_) {
      if (b == block) return true;
    }
    return false;
  }

  Bytes used() const { return Bytes{used_}; }

 private:
  Bytes capacity_;
  std::int64_t used_{0};
  std::deque<std::pair<std::uint64_t, Bytes>> entries_;
};

TEST(CacheTest, InsertAndHit) {
  Cache c(4_KiB);
  EXPECT_TRUE(c.insert(1, 1_KiB));
  EXPECT_TRUE(c.access(1));
  EXPECT_EQ(c.stats().hits, 1);
  EXPECT_EQ(c.stats().misses, 0);
  EXPECT_EQ(c.used(), 1_KiB);
}

TEST(CacheTest, MissOnAbsent) {
  Cache c(4_KiB);
  EXPECT_FALSE(c.access(99));
  EXPECT_EQ(c.stats().misses, 1);
}

TEST(CacheTest, LruEvictionOrder) {
  Cache c(3_KiB);
  c.insert(1, 1_KiB);
  c.insert(2, 1_KiB);
  c.insert(3, 1_KiB);
  c.access(1);          // 1 becomes most recent; LRU order now 2, 3, 1
  c.insert(4, 2_KiB);   // must evict 2 and 3
  EXPECT_FALSE(c.contains(2));
  EXPECT_FALSE(c.contains(3));
  EXPECT_TRUE(c.contains(1));
  EXPECT_TRUE(c.contains(4));
  EXPECT_EQ(c.stats().evictions, 2);
  EXPECT_EQ(c.stats().bytes_evicted, 2_KiB);
}

TEST(CacheTest, OversizedBlockRejected) {
  Cache c(1_KiB);
  EXPECT_FALSE(c.insert(1, 2_KiB));
  EXPECT_EQ(c.used(), Bytes{0});
  EXPECT_EQ(c.stats().insertions, 0);
}

TEST(CacheTest, ReinsertRefreshesWithoutDoubleCount) {
  Cache c(4_KiB);
  c.insert(1, 1_KiB);
  c.insert(1, 2_KiB);  // resize + refresh
  EXPECT_EQ(c.used(), 2_KiB);
  EXPECT_TRUE(c.contains(1));
}

TEST(CacheTest, EraseFreesSpace) {
  Cache c(2_KiB);
  c.insert(1, 2_KiB);
  c.erase(1);
  EXPECT_EQ(c.used(), Bytes{0});
  EXPECT_FALSE(c.contains(1));
  c.erase(1);  // idempotent
  EXPECT_TRUE(c.insert(2, 2_KiB));
  EXPECT_EQ(c.stats().evictions, 0);
}

TEST(CacheTest, CapacityExactlyFilled) {
  Cache c(2_KiB);
  EXPECT_TRUE(c.insert(1, 1_KiB));
  EXPECT_TRUE(c.insert(2, 1_KiB));
  EXPECT_EQ(c.used(), c.capacity());
  EXPECT_TRUE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
}

TEST(CacheTest, AccessRefreshesLru) {
  Cache c(2_KiB);
  c.insert(1, 1_KiB);
  c.insert(2, 1_KiB);
  c.access(1);         // LRU is now 2
  c.insert(3, 1_KiB);  // evicts 2
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
}

TEST(CacheTest, StatsVolumeTracking) {
  Cache c(8_KiB);
  c.insert(1, 2_KiB);
  c.insert(2, 3_KiB);
  EXPECT_EQ(c.stats().bytes_inserted, 5_KiB);
  EXPECT_EQ(c.stats().insertions, 2);
}

class CacheReferenceModelTest : public testing::TestWithParam<std::uint64_t> {
};

TEST_P(CacheReferenceModelTest, RandomOperationsMatchReferenceLru) {
  Rng rng(GetParam());
  Cache cache(8_KiB);
  ReferenceLru reference(8_KiB);

  for (int op = 0; op < 2000; ++op) {
    const std::uint64_t block =
        static_cast<std::uint64_t>(rng.uniform_int(0, 15));
    switch (rng.uniform_int(0, 2)) {
      case 0: {
        const Bytes size{rng.uniform_int(1, 10) * 512};
        EXPECT_EQ(cache.insert(block, size), reference.insert(block, size));
        break;
      }
      case 1:
        EXPECT_EQ(cache.access(block), reference.access(block));
        break;
      default:
        cache.erase(block);
        reference.erase(block);
        break;
    }
    ASSERT_EQ(cache.used(), reference.used()) << "op " << op;
    ASSERT_EQ(cache.contains(block), reference.contains(block)) << "op " << op;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheReferenceModelTest,
                         testing::Range<std::uint64_t>(1, 9));

TEST(CacheTest, InvalidConstructionAndInsert) {
  EXPECT_THROW(Cache(Bytes{0}), ContractViolation);
  Cache c(1_KiB);
  EXPECT_THROW(c.insert(1, Bytes{0}), ContractViolation);
}

}  // namespace
}  // namespace paraconv::pim
