#include "pim/machine.hpp"

#include <gtest/gtest.h>

#include <string>

namespace paraconv::pim {
namespace {

using graph::NodeId;
using graph::Task;
using graph::TaskGraph;
using graph::TaskKind;
using sched::KernelSchedule;
using sched::TaskPlacement;

PimConfig two_pe_config() {
  PimConfig cfg;
  cfg.pe_count = 2;
  cfg.pe_cache_bytes = 4_KiB;
  cfg.vault_count = 2;
  cfg.cache_bytes_per_unit = 4 * 1024;  // 1 KiB IPR -> 1 unit
  cfg.edram_bytes_per_unit = 512;       // 1 KiB IPR -> 2 units
  cfg.validate();
  return cfg;
}

/// A(2) -> B(2) with a 1 KiB IPR; producer on PE0, consumer on PE1 at
/// offset 3 (slack covers the 1-unit cache transfer), period 5.
struct Pipeline {
  TaskGraph g{"machine-test"};
  KernelSchedule kernel;

  explicit Pipeline(AllocSite site) {
    const NodeId a =
        g.add_task(Task{"A", TaskKind::kConvolution, TimeUnits{2}});
    const NodeId b =
        g.add_task(Task{"B", TaskKind::kConvolution, TimeUnits{2}});
    g.add_ipr(a, b, 1_KiB);

    kernel.period = TimeUnits{5};
    kernel.placement = {TaskPlacement{0, TimeUnits{0}},
                        TaskPlacement{1, TimeUnits{3}}};
    kernel.retiming = {0, 0};
    kernel.distance = {0};
    kernel.allocation = {site};
  }
};

TEST(MachineTest, ValidCachedScheduleRunsClean) {
  const Pipeline p(AllocSite::kCache);
  Machine machine(two_pe_config());
  const MachineStats stats = machine.run(p.g, p.kernel, {.iterations = 10});
  EXPECT_EQ(stats.tasks_executed, 20);
  EXPECT_EQ(stats.readiness_violations, 0);
  EXPECT_EQ(stats.cache_hits, 10);  // one consumption per iteration
  EXPECT_EQ(stats.cache_fallbacks, 0);
  EXPECT_EQ(stats.edram_accesses, 0);
  EXPECT_EQ(stats.noc_bytes, 10_KiB);  // cross-PE hand-off each iteration
}

TEST(MachineTest, EdramAllocationRoutesThroughVaults) {
  Pipeline p(AllocSite::kEdram);
  // eDRAM transfer takes 2 units: consumer offset 3 still works (2+2 <= ...
  // no: 0+2+2=4 > 3), so push the consumer to offset 4.
  p.kernel.placement[1].start = TimeUnits{4};
  p.kernel.period = TimeUnits{6};
  Machine machine(two_pe_config());
  const MachineStats stats = machine.run(p.g, p.kernel, {.iterations = 10});
  EXPECT_EQ(stats.readiness_violations, 0);
  EXPECT_EQ(stats.edram_accesses, 20);  // one write + one read per iteration
  EXPECT_EQ(stats.edram_bytes, 20_KiB);
  EXPECT_EQ(stats.cache_hits, 0);
}

TEST(MachineTest, StrictModeThrowsOnReadinessViolation) {
  Pipeline p(AllocSite::kCache);
  p.kernel.placement[1].start = TimeUnits{1};  // before A finishes
  Machine machine(two_pe_config());
  EXPECT_THROW(machine.run(p.g, p.kernel, {.iterations = 2, .strict = true}),
               ContractViolation);
}

TEST(MachineTest, LenientModeCountsViolations) {
  Pipeline p(AllocSite::kCache);
  p.kernel.placement[1].start = TimeUnits{1};
  Machine machine(two_pe_config());
  const MachineStats stats =
      machine.run(p.g, p.kernel, {.iterations = 4, .strict = false});
  EXPECT_EQ(stats.readiness_violations, 4);
}

TEST(MachineTest, OvercommittedCacheFallsBackToEdram) {
  // A produces two cached 3 KiB IPRs into a 4 KiB cache: the second insert
  // evicts the first, so one consumer per iteration misses and refetches.
  TaskGraph g("overcommit");
  const NodeId a = g.add_task(Task{"A", TaskKind::kConvolution, TimeUnits{2}});
  const NodeId b = g.add_task(Task{"B", TaskKind::kConvolution, TimeUnits{1}});
  const NodeId c = g.add_task(Task{"C", TaskKind::kConvolution, TimeUnits{1}});
  g.add_ipr(a, b, 3_KiB);
  g.add_ipr(a, c, 3_KiB);

  KernelSchedule kernel;
  kernel.period = TimeUnits{6};
  kernel.placement = {TaskPlacement{0, TimeUnits{0}},
                      TaskPlacement{1, TimeUnits{4}},
                      TaskPlacement{1, TimeUnits{5}}};
  kernel.retiming = {0, 0, 0};
  kernel.distance = {0, 0};
  kernel.allocation = {AllocSite::kCache, AllocSite::kCache};

  Machine machine(two_pe_config());
  const MachineStats stats = machine.run(g, kernel, {.iterations = 5});
  EXPECT_EQ(stats.readiness_violations, 0);
  EXPECT_EQ(stats.cache_fallbacks, 5);   // first IPR evicted every iteration
  EXPECT_EQ(stats.cache_evictions, 5);
  EXPECT_EQ(stats.edram_accesses, 5);    // the refetches
}

TEST(MachineTest, UtilizationAndMakespanAreConsistent) {
  const Pipeline p(AllocSite::kCache);
  Machine machine(two_pe_config());
  const MachineStats stats = machine.run(p.g, p.kernel, {.iterations = 8});
  // Makespan: windows 0..7, last B finishes at 7*5 + 3 + 2 = 40.
  EXPECT_EQ(stats.makespan.value, 40);
  ASSERT_EQ(stats.pe_utilization.size(), 2U);
  EXPECT_NEAR(stats.pe_utilization[0], 16.0 / 40.0, 1e-9);
  EXPECT_NEAR(stats.pe_utilization[1], 16.0 / 40.0, 1e-9);
}

TEST(MachineTest, EnergyGrowsWithIterations) {
  const Pipeline p(AllocSite::kCache);
  Machine machine(two_pe_config());
  const auto s2 = machine.run(p.g, p.kernel, {.iterations = 2});
  Machine machine2(two_pe_config());
  const auto s4 = machine2.run(p.g, p.kernel, {.iterations = 4});
  EXPECT_GT(s4.energy.total(), s2.energy.total());
  EXPECT_NEAR(s4.energy.compute.value, 2.0 * s2.energy.compute.value, 1e-6);
}

TEST(MachineTest, VaultContentionDetectedWhenOversubscribed) {
  // One producer fans out two eDRAM IPRs that map to the same vault (single
  // vault config): simultaneous writes at the producer's finish contend.
  TaskGraph g("contention");
  const NodeId a = g.add_task(Task{"A", TaskKind::kConvolution, TimeUnits{2}});
  const NodeId b = g.add_task(Task{"B", TaskKind::kConvolution, TimeUnits{1}});
  const NodeId c = g.add_task(Task{"C", TaskKind::kConvolution, TimeUnits{1}});
  g.add_ipr(a, b, 2_KiB);
  g.add_ipr(a, c, 2_KiB);

  KernelSchedule kernel;
  kernel.period = TimeUnits{10};
  kernel.placement = {TaskPlacement{0, TimeUnits{0}},
                      TaskPlacement{1, TimeUnits{7}},
                      TaskPlacement{1, TimeUnits{8}}};
  kernel.retiming = {0, 0, 0};
  kernel.distance = {0, 0};
  kernel.allocation = {AllocSite::kEdram, AllocSite::kEdram};

  PimConfig cfg = two_pe_config();
  cfg.vault_count = 1;
  Machine machine(cfg);
  const MachineStats stats = machine.run(g, kernel, {.iterations = 3});
  EXPECT_GT(stats.vault_contention_events, 0);
  EXPECT_GT(stats.vault_wait_time.value, 0);
}

TEST(MachineTest, NoContentionWithDedicatedVaults) {
  Pipeline q(AllocSite::kEdram);
  q.kernel.placement[1].start = TimeUnits{4};
  q.kernel.period = TimeUnits{6};
  Machine machine(two_pe_config());
  const MachineStats stats = machine.run(q.g, q.kernel, {.iterations = 3});
  EXPECT_EQ(stats.vault_contention_events, 0);
  EXPECT_EQ(stats.vault_wait_time.value, 0);
}

TEST(MachineTest, ObserverStreamHasFixedTotalOrderForSameTimeEvents) {
  // Two producers finishing at the same instant feed one consumer. Before
  // the timeline comparator was made total, the relative order of their
  // same-time events depended on std::sort's internal permutation; it must
  // follow the documented (iteration, edge, node, pe) key, and the whole
  // observer stream must replay byte-identically.
  TaskGraph g("same-time");
  const NodeId x = g.add_task(Task{"X", TaskKind::kConvolution, TimeUnits{2}});
  const NodeId y = g.add_task(Task{"Y", TaskKind::kConvolution, TimeUnits{2}});
  const NodeId z = g.add_task(Task{"Z", TaskKind::kConvolution, TimeUnits{1}});
  g.add_ipr(y, z, 1_KiB);  // edge 0: the cross-PE hand-off
  g.add_ipr(x, z, 1_KiB);  // edge 1: the same-PE hand-off

  KernelSchedule kernel;
  kernel.period = TimeUnits{6};
  kernel.placement = {TaskPlacement{0, TimeUnits{0}},
                      TaskPlacement{1, TimeUnits{0}},
                      TaskPlacement{0, TimeUnits{4}}};
  kernel.retiming = {0, 0, 0};
  kernel.distance = {0, 0};
  kernel.allocation = {AllocSite::kCache, AllocSite::kCache};

  const auto trace = [&] {
    std::string out;
    Machine machine(two_pe_config());
    MachineRunOptions options;
    options.iterations = 3;
    options.observer = [&out](const MemoryEvent& ev) {
      out += std::to_string(ev.time.value) + ":" + to_string(ev.kind) + ":e" +
             std::to_string(ev.edge.value) + ":pe" + std::to_string(ev.pe) +
             "\n";
    };
    machine.run(g, kernel, options);
    return out;
  };

  const std::string first = trace();
  EXPECT_EQ(first, trace());
  // Both producers finish at t=2; Y's insert (edge 0, PE1) must come
  // strictly before X's (edge 1, PE0).
  const auto p0 = first.find("2:cache-insert:e0:pe1");
  const auto p1 = first.find("2:cache-insert:e1:pe0");
  ASSERT_NE(p0, std::string::npos);
  ASSERT_NE(p1, std::string::npos);
  EXPECT_LT(p0, p1);
  // The consumer's two same-time hand-offs at t=4 follow the same key.
  const auto c0 = first.find("4:cache-hit:e0:pe0");
  const auto c1 = first.find("4:cache-hit:e1:pe0");
  ASSERT_NE(c0, std::string::npos);
  ASSERT_NE(c1, std::string::npos);
  EXPECT_LT(c0, c1);
}

TEST(MachineTest, RejectsInvalidArguments) {
  const Pipeline p(AllocSite::kCache);
  Machine machine(two_pe_config());
  EXPECT_THROW(machine.run(p.g, p.kernel, {.iterations = 0}),
               ContractViolation);
  KernelSchedule broken = p.kernel;
  broken.allocation.clear();
  EXPECT_THROW(machine.run(p.g, broken, {.iterations = 1}),
               ContractViolation);
}

}  // namespace
}  // namespace paraconv::pim
