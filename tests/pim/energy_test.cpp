#include "pim/energy.hpp"

#include <gtest/gtest.h>

namespace paraconv::pim {
namespace {

PimConfig unit_config() {
  PimConfig cfg;
  cfg.cache_pj_per_byte = 1.0;
  cfg.edram_pj_per_byte = 4.0;
  cfg.noc_pj_per_byte = 0.5;
  cfg.compute_pj_per_unit = 10.0;
  return cfg;
}

TEST(EnergyModelTest, AccumulatesPerComponent) {
  EnergyModel e(unit_config());
  e.on_cache_access(Bytes{100});
  e.on_edram_access(Bytes{50});
  e.on_noc_transfer(Bytes{200});
  e.on_compute(TimeUnits{3});
  EXPECT_DOUBLE_EQ(e.breakdown().cache.value, 100.0);
  EXPECT_DOUBLE_EQ(e.breakdown().edram.value, 200.0);
  EXPECT_DOUBLE_EQ(e.breakdown().noc.value, 100.0);
  EXPECT_DOUBLE_EQ(e.breakdown().compute.value, 30.0);
  EXPECT_DOUBLE_EQ(e.breakdown().total().value, 430.0);
}

TEST(EnergyModelTest, StartsAtZero) {
  EnergyModel e(unit_config());
  EXPECT_DOUBLE_EQ(e.breakdown().total().value, 0.0);
}

TEST(EnergyModelTest, RepeatedEventsSum) {
  EnergyModel e(unit_config());
  for (int i = 0; i < 10; ++i) e.on_cache_access(Bytes{10});
  EXPECT_DOUBLE_EQ(e.breakdown().cache.value, 100.0);
}

TEST(EnergyBreakdownTest, TotalIsComponentSum) {
  EnergyBreakdown b;
  b.cache = Picojoules{1};
  b.edram = Picojoules{2};
  b.noc = Picojoules{3};
  b.compute = Picojoules{4};
  EXPECT_DOUBLE_EQ(b.total().value, 10.0);
}

}  // namespace
}  // namespace paraconv::pim
