// Weight-streaming model: when PimConfig::weights_resident is false, each
// task execution reads its filter footprint from the vaults.
#include <gtest/gtest.h>

#include "cnn/builders.hpp"
#include "cnn/lowering.hpp"
#include "core/para_conv.hpp"
#include "pim/machine.hpp"

namespace paraconv::pim {
namespace {

using graph::NodeId;
using graph::Task;
using graph::TaskGraph;
using graph::TaskKind;

struct Fixture {
  TaskGraph g{"weights"};
  sched::KernelSchedule kernel;

  Fixture() {
    Task a{"A", TaskKind::kConvolution, TimeUnits{2}};
    a.weights = 4_KiB;
    Task b{"B", TaskKind::kConvolution, TimeUnits{2}};
    b.weights = Bytes{0};  // weightless (e.g. pooling)
    const NodeId na = g.add_task(std::move(a));
    const NodeId nb = g.add_task(std::move(b));
    g.add_ipr(na, nb, 1_KiB);
    kernel.period = TimeUnits{5};
    kernel.placement = {sched::TaskPlacement{0, TimeUnits{0}},
                        sched::TaskPlacement{1, TimeUnits{3}}};
    kernel.retiming = {0, 0};
    kernel.distance = {0};
    kernel.allocation = {AllocSite::kCache};
  }
};

PimConfig config(bool resident) {
  PimConfig cfg;
  cfg.pe_count = 2;
  cfg.pe_cache_bytes = 8_KiB;
  cfg.cache_bytes_per_unit = 4 * 1024;
  cfg.edram_bytes_per_unit = 512;
  cfg.weights_resident = resident;
  cfg.validate();
  return cfg;
}

TEST(WeightStreamingTest, ResidentWeightsCostNothing) {
  const Fixture f;
  Machine machine(config(true));
  const MachineStats stats = machine.run(f.g, f.kernel, {.iterations = 4});
  EXPECT_EQ(stats.weight_bytes, Bytes{0});
  EXPECT_EQ(stats.edram_accesses, 0);
}

TEST(WeightStreamingTest, StreamedWeightsGenerateVaultTraffic) {
  const Fixture f;
  Machine machine(config(false));
  const MachineStats stats = machine.run(f.g, f.kernel, {.iterations = 4});
  // Only task A carries weights: 4 iterations x 4 KiB.
  EXPECT_EQ(stats.weight_bytes, 16_KiB);
  EXPECT_EQ(stats.edram_accesses, 4);
  EXPECT_EQ(stats.edram_bytes, 16_KiB);
  EXPECT_GT(stats.energy.edram.value, 0.0);
}

TEST(WeightStreamingTest, LoweredGraphsCarryWeightFootprints) {
  const cnn::Network net = cnn::make_lenet5();
  cnn::LoweringOptions options;
  options.element_bytes = 2;
  const graph::TaskGraph g = cnn::lower_to_task_graph(net, options);

  // c1 task: 150 weights x 2 bytes.
  Bytes total{};
  for (const NodeId v : g.nodes()) {
    total += g.task(v).weights;
    if (g.task(v).name == "c1") {
      EXPECT_EQ(g.task(v).weights, Bytes{150 * 2});
    }
    if (g.task(v).kind == graph::TaskKind::kPooling) {
      EXPECT_EQ(g.task(v).weights, Bytes{0});
    }
  }
  EXPECT_EQ(total, Bytes{net.total_weights() * 2});
}

TEST(WeightStreamingTest, ChannelGroupsSplitTheFootprint) {
  cnn::Network net("one-conv");
  const auto in = net.add_input("in", cnn::Shape{8, 8, 8});
  net.add_conv("c", in, cnn::ConvParams{16, 3, 1, 1});
  cnn::LoweringOptions options;
  options.channel_groups = 4;
  const graph::TaskGraph g = cnn::lower_to_task_graph(net, options);
  ASSERT_EQ(g.node_count(), 4U);
  const std::int64_t per_group = 16LL * 8 * 9 * 2 / 4;
  for (const NodeId v : g.nodes()) {
    EXPECT_EQ(g.task(v).weights.value, per_group);
  }
}

TEST(WeightStreamingTest, EndToEndGoogLeNetEnergyGap) {
  cnn::LoweringOptions lowering;
  lowering.channel_groups = 2;
  const graph::TaskGraph g =
      cnn::lower_to_task_graph(cnn::make_googlenet(), lowering);
  const core::ParaConvResult r =
      core::ParaConv(PimConfig::neurocube(32)).schedule(g);

  PimConfig resident = PimConfig::neurocube(32);
  PimConfig streaming = resident;
  streaming.weights_resident = false;

  const MachineStats pinned =
      Machine(resident).run(g, r.kernel, {.iterations = 2});
  const MachineStats streamed =
      Machine(streaming).run(g, r.kernel, {.iterations = 2});
  EXPECT_EQ(pinned.weight_bytes, Bytes{0});
  // 2 iterations x ~7M weights x 2 bytes.
  EXPECT_GT(streamed.weight_bytes.value, 20'000'000);
  EXPECT_GT(streamed.energy.total(), pinned.energy.total());
}

}  // namespace
}  // namespace paraconv::pim
