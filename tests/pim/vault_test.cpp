#include "pim/vault.hpp"

#include <gtest/gtest.h>

namespace paraconv::pim {
namespace {

TEST(VaultTest, ReadLatencyFromBandwidth) {
  Vault v(0, 512);
  EXPECT_EQ(v.read(Bytes{512}).value, 1);
  EXPECT_EQ(v.read(Bytes{513}).value, 2);
  EXPECT_EQ(v.read(Bytes{1}).value, 1);
}

TEST(VaultTest, TrafficAccounting) {
  Vault v(3, 1024);
  v.read(1_KiB);
  v.read(2_KiB);
  v.write(4_KiB);
  EXPECT_EQ(v.stats().reads, 2);
  EXPECT_EQ(v.stats().writes, 1);
  EXPECT_EQ(v.stats().bytes_read, 3_KiB);
  EXPECT_EQ(v.stats().bytes_written, 4_KiB);
  EXPECT_EQ(v.id(), 3);
}

TEST(VaultTest, RejectsInvalidArguments) {
  EXPECT_THROW(Vault(0, 0), ContractViolation);
  Vault v(0, 512);
  EXPECT_THROW(v.read(Bytes{0}), ContractViolation);
  EXPECT_THROW(v.write(Bytes{0}), ContractViolation);
}

}  // namespace
}  // namespace paraconv::pim
