#include "pim/config.hpp"

#include <gtest/gtest.h>

namespace paraconv::pim {
namespace {

TEST(PimConfigTest, DefaultsValidate) {
  PimConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(PimConfigTest, TotalCacheScalesWithPeCount) {
  PimConfig cfg;
  cfg.pe_count = 16;
  cfg.pe_cache_bytes = 16_KiB;
  EXPECT_EQ(cfg.total_cache_bytes(), Bytes{16 * 16 * 1024});
  cfg.pe_count = 64;
  EXPECT_EQ(cfg.total_cache_bytes(), 1_MiB);
}

TEST(PimConfigTest, NeurocubePresetInsidePaperEnvelope) {
  // The paper cites 100-300 KB of cache for the PE array (Sec. 2.3) at the
  // 16-PE configuration.
  const PimConfig cfg = PimConfig::neurocube(16);
  EXPECT_GE(cfg.total_cache_bytes().value, 100 * 1024);
  EXPECT_LE(cfg.total_cache_bytes().value, 300 * 1024);
  EXPECT_EQ(cfg.pe_count, 16);
}

TEST(PimConfigTest, EdramPenaltyInsidePaperEnvelope) {
  // Fetching from DRAM vaults costs 2x-10x cache (Sec. 2.2).
  const PimConfig cfg;
  const double ratio = static_cast<double>(cfg.cache_bytes_per_unit) /
                       static_cast<double>(cfg.edram_bytes_per_unit);
  EXPECT_GE(ratio, 2.0);
  EXPECT_LE(ratio, 10.0);
  EXPECT_GE(cfg.edram_pj_per_byte / cfg.cache_pj_per_byte, 2.0);
  EXPECT_LE(cfg.edram_pj_per_byte / cfg.cache_pj_per_byte, 10.0);
}

TEST(PimConfigTest, TransferTimeCeilsAndFloorsAtOne) {
  PimConfig cfg;
  cfg.cache_bytes_per_unit = 4096;
  cfg.edram_bytes_per_unit = 512;
  EXPECT_EQ(cfg.transfer_time(AllocSite::kCache, Bytes{1}).value, 1);
  EXPECT_EQ(cfg.transfer_time(AllocSite::kCache, Bytes{4096}).value, 1);
  EXPECT_EQ(cfg.transfer_time(AllocSite::kCache, Bytes{4097}).value, 2);
  EXPECT_EQ(cfg.transfer_time(AllocSite::kEdram, Bytes{4096}).value, 8);
}

TEST(PimConfigTest, EdramNeverFasterThanCache) {
  const PimConfig cfg;
  for (const std::int64_t size : {64, 1024, 4096, 16384, 65536}) {
    EXPECT_LE(cfg.transfer_time(AllocSite::kCache, Bytes{size}),
              cfg.transfer_time(AllocSite::kEdram, Bytes{size}));
  }
}

struct BadConfigCase {
  const char* label;
  void (*mutate)(PimConfig&);
};

class PimConfigValidationTest : public testing::TestWithParam<BadConfigCase> {
};

TEST_P(PimConfigValidationTest, Rejected) {
  PimConfig cfg;
  GetParam().mutate(cfg);
  EXPECT_THROW(cfg.validate(), ContractViolation) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    BadConfigs, PimConfigValidationTest,
    testing::Values(
        BadConfigCase{"zero PEs", [](PimConfig& c) { c.pe_count = 0; }},
        BadConfigCase{"empty cache",
                      [](PimConfig& c) { c.pe_cache_bytes = Bytes{0}; }},
        BadConfigCase{"no vaults", [](PimConfig& c) { c.vault_count = 0; }},
        BadConfigCase{"zero cache bw",
                      [](PimConfig& c) { c.cache_bytes_per_unit = 0; }},
        BadConfigCase{"zero edram bw",
                      [](PimConfig& c) { c.edram_bytes_per_unit = 0; }},
        BadConfigCase{"edram faster than cache",
                      [](PimConfig& c) {
                        c.edram_bytes_per_unit = c.cache_bytes_per_unit * 2;
                      }},
        BadConfigCase{"edram energy cheaper than cache",
                      [](PimConfig& c) { c.edram_pj_per_byte = 0.01; }},
        BadConfigCase{"negative noc energy",
                      [](PimConfig& c) { c.noc_pj_per_byte = -1.0; }}),
    [](const testing::TestParamInfo<BadConfigCase>& param_info) {
      std::string name = param_info.param.label;
      for (char& ch : name) {
        if (ch == ' ') ch = '_';
      }
      return name;
    });

TEST(AllocSiteTest, Names) {
  // Lowercase token discipline (lint-checked): one lowercase token per
  // site, and the decoder round-trips exactly what the encoder emits.
  EXPECT_STREQ(to_string(AllocSite::kCache), "cache");
  EXPECT_STREQ(to_string(AllocSite::kEdram), "edram");
}

TEST(AllocSiteTest, TokensRoundTrip) {
  for (const AllocSite site : {AllocSite::kCache, AllocSite::kEdram}) {
    const std::optional<AllocSite> decoded =
        alloc_site_from_string(to_string(site));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, site);
  }
  EXPECT_FALSE(alloc_site_from_string("eDRAM").has_value());
  EXPECT_FALSE(alloc_site_from_string("").has_value());
}

TEST(PimConfigTest, ZeroByteTransferTakesNoTime) {
  // Zero-size contract: moving nothing takes no time at either site; the
  // one-unit floor applies only to real payloads.
  const PimConfig cfg;
  EXPECT_EQ(cfg.transfer_time(AllocSite::kCache, Bytes{0}).value, 0);
  EXPECT_EQ(cfg.transfer_time(AllocSite::kEdram, Bytes{0}).value, 0);
  EXPECT_EQ(cfg.transfer_time(AllocSite::kEdram, Bytes{1}).value, 1);
  EXPECT_THROW(cfg.transfer_time(AllocSite::kEdram, Bytes{-1}),
               ContractViolation);
}

TEST(PimConfigTest, PerFieldEnergyValidationMessages) {
  // The combined "energy constants must be positive" check hid which field
  // failed; each field now carries its own message.
  const auto message_of = [](void (*mutate)(PimConfig&)) {
    PimConfig cfg;
    mutate(cfg);
    try {
      cfg.validate();
    } catch (const ContractViolation& e) {
      return std::string(e.what());
    }
    return std::string{};
  };
  EXPECT_NE(message_of([](PimConfig& c) { c.cache_pj_per_byte = 0.0; })
                .find("cache energy"),
            std::string::npos);
  EXPECT_NE(message_of([](PimConfig& c) { c.edram_pj_per_byte = 0.0; })
                .find("eDRAM energy"),
            std::string::npos);
  EXPECT_NE(message_of([](PimConfig& c) { c.noc_pj_per_byte = -1.0; })
                .find("NoC energy"),
            std::string::npos);
  EXPECT_NE(message_of([](PimConfig& c) { c.compute_pj_per_unit = -1.0; })
                .find("compute energy"),
            std::string::npos);
  // Zero NoC / compute energy is a legal ablation point.
  PimConfig ablation;
  ablation.noc_pj_per_byte = 0.0;
  ablation.compute_pj_per_unit = 0.0;
  EXPECT_NO_THROW(ablation.validate());
}

}  // namespace
}  // namespace paraconv::pim
