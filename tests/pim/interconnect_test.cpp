#include "pim/interconnect.hpp"

#include <gtest/gtest.h>

namespace paraconv::pim {
namespace {

TEST(InterconnectTest, SamePeTransferIsFree) {
  Interconnect x(4, 1024);
  EXPECT_EQ(x.transfer(2, 2, 8_KiB).value, 0);
  EXPECT_EQ(x.stats().messages, 0);
  EXPECT_EQ(x.stats().bytes_moved, Bytes{0});
}

TEST(InterconnectTest, CrossPeLatencyAndStats) {
  Interconnect x(4, 1024);
  EXPECT_EQ(x.transfer(0, 1, 1_KiB).value, 1);
  EXPECT_EQ(x.transfer(1, 3, Bytes{1025}).value, 2);
  EXPECT_EQ(x.stats().messages, 2);
  EXPECT_EQ(x.stats().bytes_moved.value, 1024 + 1025);
}

TEST(InterconnectTest, UniformCrossbarLatency) {
  Interconnect x(64, 2048);
  const TimeUnits a = x.transfer(0, 63, 4_KiB);
  const TimeUnits b = x.transfer(30, 31, 4_KiB);
  EXPECT_EQ(a, b);  // crossbar: single hop regardless of PE distance
}

TEST(InterconnectTest, RejectsInvalidEndpointsAndSizes) {
  Interconnect x(4, 1024);
  EXPECT_THROW(x.transfer(-1, 0, 1_KiB), ContractViolation);
  EXPECT_THROW(x.transfer(0, 4, 1_KiB), ContractViolation);
  EXPECT_THROW(x.transfer(0, 1, Bytes{-1}), ContractViolation);
  EXPECT_THROW(Interconnect(0, 1024), ContractViolation);
  EXPECT_THROW(Interconnect(4, 0), ContractViolation);
}

TEST(InterconnectTest, ZeroByteTransferIsFreeAndUncounted) {
  // Zero-size contract (shared with PimConfig::transfer_time): moving
  // nothing takes no time and does not show up in the traffic stats.
  Interconnect x(4, 1024);
  EXPECT_EQ(x.transfer(0, 1, Bytes{0}).value, 0);
  EXPECT_EQ(x.stats().messages, 0);
  EXPECT_EQ(x.stats().bytes_moved, Bytes{0});
  EXPECT_EQ(x.transfer(0, 1, Bytes{1}).value, 1);  // floor still applies
  EXPECT_EQ(x.stats().messages, 1);
}

}  // namespace
}  // namespace paraconv::pim
