// The headline claim of the paper (Table 1): Para-CONV beats the baseline
// on every benchmark at every PE count.
#include <gtest/gtest.h>

#include "core/para_conv.hpp"
#include "core/sparta.hpp"
#include "graph/paper_benchmarks.hpp"
#include "sched/validator.hpp"

namespace paraconv {
namespace {

struct Cell {
  std::string benchmark;
  int pe_count;
};

class EndToEndTest : public testing::TestWithParam<Cell> {};

TEST_P(EndToEndTest, ParaConvBeatsBaseline) {
  const graph::TaskGraph g = graph::build_paper_benchmark(
      graph::paper_benchmark(GetParam().benchmark));
  const pim::PimConfig config = pim::PimConfig::neurocube(GetParam().pe_count);
  const std::int64_t iterations = 100;

  const auto base = core::Sparta(config, {iterations}).schedule(g);
  const auto ours =
      core::ParaConv(config, {.iterations = iterations}).schedule(g);

  // Strictly better end-to-end time (prologue included), and a compacted
  // per-iteration kernel.
  EXPECT_LT(ours.metrics.total_time, base.metrics.total_time);
  EXPECT_LE(ours.metrics.iteration_time, base.metrics.iteration_time);
  EXPECT_GE(ours.metrics.pe_utilization,
            base.metrics.pe_utilization - 1e-9);

  // The emitted schedule survives the independent validator.
  EXPECT_TRUE(sched::is_valid_kernel_schedule(g, ours.kernel, config,
                                              config.total_cache_bytes()));
}

std::vector<Cell> all_cells() {
  std::vector<Cell> cells;
  for (const graph::PaperBenchmark& b : graph::paper_benchmarks()) {
    for (const int pe : {16, 32, 64}) {
      cells.push_back(Cell{b.name, pe});
    }
  }
  return cells;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarksAllPeCounts, EndToEndTest, testing::ValuesIn(all_cells()),
    [](const testing::TestParamInfo<Cell>& param_info) {
      std::string name =
          param_info.param.benchmark + "_" + std::to_string(param_info.param.pe_count);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace paraconv
