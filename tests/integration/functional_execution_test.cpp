// Functional capstone: the retimed schedule must preserve *computational*
// semantics, not just timing. We lower LeNet-5 to a task graph, schedule it
// with Para-CONV, execute real tensor arithmetic in the schedule's
// iteration order (producers in earlier windows / earlier starts), and
// check the result equals a plain layer-by-layer forward pass.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "cnn/builders.hpp"
#include "common/rng.hpp"
#include "cnn/lowering.hpp"
#include "cnn/reference_ops.hpp"
#include "core/para_conv.hpp"

namespace paraconv {
namespace {

using cnn::ConvParams;
using cnn::FcParams;
using cnn::Layer;
using cnn::LayerId;
using cnn::Network;
using cnn::PoolParams;
using cnn::Tensor;

/// Plain forward pass through a linear network (LeNet is a chain).
Tensor forward_reference(const Network& net, const Tensor& input,
                         std::uint64_t seed) {
  std::map<std::uint32_t, Tensor> outputs;
  for (std::uint32_t li = 0; li < net.layer_count(); ++li) {
    const Layer& layer = net.layer(LayerId{li});
    if (std::holds_alternative<cnn::InputParams>(layer.params)) {
      outputs.emplace(li, input);
      continue;
    }
    const Tensor& in = outputs.at(layer.inputs.front().value);
    if (const auto* conv = std::get_if<ConvParams>(&layer.params)) {
      outputs.emplace(li, cnn::conv2d(in, *conv,
                                      cnn::make_test_conv_weights(
                                          *conv, in.shape().channels,
                                          seed + li)));
    } else if (const auto* pool = std::get_if<PoolParams>(&layer.params)) {
      outputs.emplace(li, cnn::pool2d(in, *pool));
    } else if (const auto* fc = std::get_if<FcParams>(&layer.params)) {
      outputs.emplace(li, cnn::fully_connected(
                              in, *fc,
                              cnn::make_test_fc_weights(
                                  *fc, in.shape().elements(), seed + li)));
    } else {
      ADD_FAILURE() << "unexpected layer kind in chain network";
    }
  }
  return outputs.at(static_cast<std::uint32_t>(net.layer_count()) - 1);
}

TEST(FunctionalExecutionTest, ScheduleOrderComputesTheSameResult) {
  const Network net = cnn::make_lenet5();

  // Lower with one task per layer so tasks map 1:1 to layers. The lowering
  // elides the input layer, so task i corresponds to layer i + 1.
  const graph::TaskGraph g =
      cnn::lower_to_task_graph(net, cnn::LoweringOptions{});
  ASSERT_EQ(g.node_count(), net.layer_count() - 1);

  const pim::PimConfig config = pim::PimConfig::neurocube(16);
  const core::ParaConvResult r = core::ParaConv(config).schedule(g);

  // Execution order of one application iteration under the retimed kernel:
  // by window (r_max - r(i)), then by start offset within the window.
  std::vector<graph::NodeId> order = g.nodes();
  const int r_max = r.kernel.r_max();
  std::sort(order.begin(), order.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              const int wa = r_max - r.kernel.retiming[a.value];
              const int wb = r_max - r.kernel.retiming[b.value];
              if (wa != wb) return wa < wb;
              if (r.kernel.placement[a.value].start !=
                  r.kernel.placement[b.value].start) {
                return r.kernel.placement[a.value].start <
                       r.kernel.placement[b.value].start;
              }
              return a.value < b.value;
            });

  // The retiming-derived order must respect every dependency.
  std::vector<std::size_t> position(g.node_count());
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[order[i].value] = i;
  }
  for (const graph::EdgeId e : g.edges()) {
    EXPECT_LT(position[g.ipr(e).src.value], position[g.ipr(e).dst.value]);
  }

  // Execute real tensors in that order.
  constexpr std::uint64_t kSeed = 2017;
  Tensor input(cnn::Shape{1, 32, 32});
  Rng rng(99);
  for (float& v : input.data()) {
    v = static_cast<float>(rng.uniform_real());
  }

  std::map<std::uint32_t, Tensor> produced;  // by layer index
  produced.emplace(0, input);                // elided input layer
  for (const graph::NodeId task : order) {
    const std::uint32_t li = task.value + 1;  // task -> layer mapping
    const Layer& layer = net.layer(LayerId{li});
    const Tensor& in = produced.at(layer.inputs.front().value);
    if (const auto* conv = std::get_if<ConvParams>(&layer.params)) {
      produced.emplace(li, cnn::conv2d(in, *conv,
                                       cnn::make_test_conv_weights(
                                           *conv, in.shape().channels,
                                           kSeed + li)));
    } else if (const auto* pool = std::get_if<PoolParams>(&layer.params)) {
      produced.emplace(li, cnn::pool2d(in, *pool));
    } else if (const auto* fc = std::get_if<FcParams>(&layer.params)) {
      produced.emplace(li, cnn::fully_connected(
                               in, *fc,
                               cnn::make_test_fc_weights(
                                   *fc, in.shape().elements(), kSeed + li)));
    }
  }

  const Tensor via_schedule =
      produced.at(static_cast<std::uint32_t>(net.layer_count()) - 1);
  const Tensor reference = forward_reference(net, input, kSeed);
  ASSERT_EQ(via_schedule.shape(), reference.shape());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_FLOAT_EQ(via_schedule.data()[i], reference.data()[i]);
  }
}

}  // namespace
}  // namespace paraconv
