// Real-life CNN path: GoogLeNet / LeNet layer DAGs, lowered to task graphs
// and scheduled end-to-end on the PIM model (the paper's Sec. 4.1 source of
// real benchmarks).
#include <gtest/gtest.h>

#include "cnn/builders.hpp"
#include "cnn/lowering.hpp"
#include "core/para_conv.hpp"
#include "core/sparta.hpp"
#include "pim/machine.hpp"
#include "sched/validator.hpp"

namespace paraconv {
namespace {

class GoogLeNetPipelineTest : public testing::TestWithParam<int> {};

TEST_P(GoogLeNetPipelineTest, LowersAndSchedulesCleanly) {
  cnn::LoweringOptions lowering;
  lowering.channel_groups = GetParam();
  const graph::TaskGraph g =
      cnn::lower_to_task_graph(cnn::make_googlenet(), lowering);

  const pim::PimConfig config = pim::PimConfig::neurocube(32);
  const core::ParaConvResult ours = core::ParaConv(config).schedule(g);
  EXPECT_TRUE(sched::is_valid_kernel_schedule(g, ours.kernel, config,
                                              config.total_cache_bytes()));

  const core::SpartaResult base = core::Sparta(config).schedule(g);
  EXPECT_LE(ours.metrics.iteration_time, base.metrics.iteration_time);
  EXPECT_LT(ours.metrics.total_time, base.metrics.total_time);
}

INSTANTIATE_TEST_SUITE_P(ChannelGroups, GoogLeNetPipelineTest,
                         testing::Values(1, 2, 4));

TEST(GoogLeNetPipelineTest, MachineReplayOfLoweredGraph) {
  cnn::LoweringOptions lowering;
  lowering.channel_groups = 2;
  const graph::TaskGraph g =
      cnn::lower_to_task_graph(cnn::make_googlenet(), lowering);
  const pim::PimConfig config = pim::PimConfig::neurocube(64);
  const core::ParaConvResult r = core::ParaConv(config).schedule(g);

  pim::Machine machine(config);
  const pim::MachineStats stats =
      machine.run(g, r.kernel, {.iterations = 3, .strict = true});
  EXPECT_EQ(stats.readiness_violations, 0);
  EXPECT_EQ(stats.tasks_executed,
            3 * static_cast<std::int64_t>(g.node_count()));
}

TEST(LeNetPipelineTest, SmallNetworkSchedules) {
  const graph::TaskGraph g =
      cnn::lower_to_task_graph(cnn::make_lenet5(), cnn::LoweringOptions{});
  const pim::PimConfig config = pim::PimConfig::neurocube(16);
  const core::ParaConvResult r = core::ParaConv(config).schedule(g);
  EXPECT_TRUE(sched::is_valid_kernel_schedule(g, r.kernel, config,
                                              config.total_cache_bytes()));
  // A pure chain on many PEs: the kernel is the longest single task.
  EXPECT_EQ(r.metrics.iteration_time, g.max_exec_time());
}

TEST(InceptionPipelineTest, ModuleExploitsBranchParallelism) {
  const cnn::Network net =
      cnn::make_inception_module(cnn::Shape{192, 28, 28}, 64, 96, 128, 16, 32,
                                 32);
  cnn::LoweringOptions lowering;
  lowering.channel_groups = 4;
  lowering.macs_per_time_unit = 2'000'000;
  const graph::TaskGraph g = cnn::lower_to_task_graph(net, lowering);

  const pim::PimConfig config = pim::PimConfig::neurocube(16);
  const auto ours = core::ParaConv(config).schedule(g);
  const auto base = core::Sparta(config).schedule(g);
  // Branches are independent: pipelining compacts the kernel well below
  // the per-iteration critical path the baseline pays.
  EXPECT_LT(ours.metrics.iteration_time, base.metrics.iteration_time);
}

}  // namespace
}  // namespace paraconv
