#include "bench_support/experiments.hpp"

#include <gtest/gtest.h>

namespace paraconv::bench_support {
namespace {

TEST(ExperimentsTest, PeCountsMatchPaper) {
  EXPECT_EQ(paper_pe_counts(), (std::vector<int>{16, 32, 64}));
}

TEST(ExperimentsTest, RunCellPopulatesBothSchedulers) {
  const ExperimentRow row =
      run_cell(graph::paper_benchmark("flower"), 32, 20);
  EXPECT_EQ(row.benchmark, "flower");
  EXPECT_EQ(row.vertices, 21U);
  EXPECT_EQ(row.edges, 51U);
  EXPECT_EQ(row.pe_count, 32);
  EXPECT_EQ(row.sparta.scheduler, "SPARTA");
  EXPECT_EQ(row.para_conv.scheduler, "Para-CONV");
  EXPECT_GT(row.sparta.total_time.value, 0);
  EXPECT_GT(row.para_conv.total_time.value, 0);
}

TEST(ExperimentsTest, GridCoversFullMatrix) {
  const auto rows = run_grid(10);
  EXPECT_EQ(rows.size(), 36U);  // 12 benchmarks x 3 PE counts
  // Benchmark-major, PE-count-minor ordering.
  EXPECT_EQ(rows[0].benchmark, "cat");
  EXPECT_EQ(rows[0].pe_count, 16);
  EXPECT_EQ(rows[2].pe_count, 64);
  EXPECT_EQ(rows[3].benchmark, "car");
  EXPECT_EQ(rows.back().benchmark, "protein");
  EXPECT_EQ(rows.back().pe_count, 64);
}

TEST(ExperimentsTest, IterationCountScalesBaselineLinearly) {
  const auto& bench = graph::paper_benchmark("cat");
  const ExperimentRow r10 = run_cell(bench, 16, 10);
  const ExperimentRow r20 = run_cell(bench, 16, 20);
  EXPECT_EQ(r20.sparta.total_time.value, 2 * r10.sparta.total_time.value);
  // Para-CONV grows by exactly 10 more kernels (prologue amortized).
  EXPECT_EQ(
      r20.para_conv.total_time.value - r10.para_conv.total_time.value,
      10 * r10.para_conv.iteration_time.value);
}

TEST(ExperimentsTest, AllocatorChoicePropagates) {
  const auto& bench = graph::paper_benchmark("character-1");
  const ExperimentRow dp =
      run_cell(bench, 16, 10, core::AllocatorKind::kKnapsackDp);
  const ExperimentRow greedy =
      run_cell(bench, 16, 10, core::AllocatorKind::kGreedyDeadline);
  // Same baseline either way; Para-CONV may differ but never exceeds the
  // greedy policy's prologue under the DP (total ΔR is maximal).
  EXPECT_EQ(dp.sparta.total_time, greedy.sparta.total_time);
  EXPECT_GT(dp.para_conv.total_time.value, 0);
}

}  // namespace
}  // namespace paraconv::bench_support
