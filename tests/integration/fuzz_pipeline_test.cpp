// Randomized end-to-end property sweep: for a grid of random graphs,
// machine shapes and allocator choices, the full pipeline must emit
// schedules that (a) pass the independent validator, (b) replay cleanly on
// the machine model, and (c) respect every documented metric identity.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/para_conv.hpp"
#include "core/sparta.hpp"
#include "graph/generator.hpp"
#include "pim/machine.hpp"
#include "sched/validator.hpp"

namespace paraconv {
namespace {

class FuzzPipelineTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzPipelineTest, RandomInstanceSatisfiesAllInvariants) {
  Rng rng(GetParam() * 0x9E3779B97F4A7C15ULL + 1);

  graph::GeneratorConfig gen;
  gen.vertices = static_cast<std::size_t>(rng.uniform_int(5, 160));
  const std::size_t max_edges = gen.vertices * (gen.vertices - 1) / 2;
  gen.edges = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(gen.vertices - 1),
      static_cast<std::int64_t>(
          std::min(max_edges, gen.vertices * 4))));
  gen.seed = rng();
  gen.min_exec = rng.uniform_int(1, 4);
  gen.max_exec = gen.min_exec + rng.uniform_int(0, 24);
  gen.min_ipr_bytes = rng.uniform_int(256, 4096);
  gen.max_ipr_bytes = gen.min_ipr_bytes + rng.uniform_int(0, 28 * 1024);
  gen.pooling_fraction = rng.uniform_real() * 0.5;
  const graph::TaskGraph g = graph::generate_layered_dag(gen);

  pim::PimConfig config;
  config.pe_count = static_cast<int>(rng.uniform_int(1, 64));
  config.pe_cache_bytes = Bytes{rng.uniform_int(1, 64) * 1024};
  config.vault_count = static_cast<int>(rng.uniform_int(1, 32));
  config.edram_bytes_per_unit = rng.uniform_int(256, 4096);
  config.cache_bytes_per_unit =
      config.edram_bytes_per_unit * rng.uniform_int(2, 10);
  config.validate();

  core::ParaConvOptions options;
  options.iterations = rng.uniform_int(1, 40);
  const core::AllocatorKind kinds[] = {
      core::AllocatorKind::kKnapsackDp, core::AllocatorKind::kGreedyDensity,
      core::AllocatorKind::kGreedyDeadline,
      core::AllocatorKind::kCriticalPath};
  options.allocator = kinds[rng.uniform_int(0, 3)];
  options.packer = rng.bernoulli(0.5) ? core::PackerKind::kTopological
                                      : core::PackerKind::kLpt;

  const core::ParaConvResult r = core::ParaConv(config, options).schedule(g);

  // (a) Independent validation.
  const auto issues = sched::validate_kernel_schedule(
      g, r.kernel, config, config.total_cache_bytes());
  ASSERT_TRUE(issues.empty()) << issues.front();

  // (b) Clean machine replay.
  pim::Machine machine(config);
  const pim::MachineStats stats =
      machine.run(g, r.kernel, {.iterations = 3, .strict = true});
  EXPECT_EQ(stats.readiness_violations, 0);

  // (c) Metric identities.
  EXPECT_EQ(r.metrics.prologue_time.value,
            r.metrics.iteration_time.value * r.metrics.r_max);
  EXPECT_EQ(r.metrics.total_time.value,
            r.metrics.iteration_time.value *
                (options.iterations + r.metrics.r_max));
  EXPECT_EQ(r.metrics.offchip_bytes_per_iteration + r.metrics.cache_bytes_used,
            g.total_ipr_bytes());
  EXPECT_LE(r.metrics.cache_bytes_used, config.total_cache_bytes());

  // Theorem 3.1 envelope.
  for (const retiming::EdgeDelta& d : r.deltas) {
    EXPECT_GE(d.cache, 0);
    EXPECT_LE(d.cache, d.edram);
    EXPECT_LE(d.edram, 2);
  }

  // And the baseline also runs on the same instance.
  core::SpartaOptions sparta_options;
  sparta_options.iterations = options.iterations;
  const core::SpartaResult base =
      core::Sparta(config, sparta_options).schedule(g);
  // Guaranteed relation: the compacted kernel is within one greedy-packing
  // slack term of the dependency-bound baseline iteration (p <= ceil(W/N) +
  // c_max and L >= ceil(W/N)). In practice p is far below L; the fixed
  // benchmark grid asserts strict improvement.
  EXPECT_LE(r.metrics.iteration_time.value,
            base.metrics.iteration_time.value + g.max_exec_time().value);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipelineTest,
                         testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace paraconv
