// Differential matrix: every packer x allocator combination must produce a
// validated kernel whose metrics respect the theoretical relations, across
// a sample of the benchmark grid. This is the broad compatibility net for
// the policy space the options expose.
#include <gtest/gtest.h>

#include "core/para_conv.hpp"
#include "graph/paper_benchmarks.hpp"
#include "sched/bounds.hpp"
#include "sched/validator.hpp"

namespace paraconv {
namespace {

struct Combo {
  const char* benchmark;
  core::PackerKind packer;
  core::AllocatorKind allocator;
};

std::vector<Combo> all_combos() {
  std::vector<Combo> combos;
  for (const char* bench : {"flower", "stock-predict"}) {
    for (const core::PackerKind packer :
         {core::PackerKind::kTopological, core::PackerKind::kLpt,
          core::PackerKind::kLocality, core::PackerKind::kModulo}) {
      for (const core::AllocatorKind allocator :
           {core::AllocatorKind::kKnapsackDp,
            core::AllocatorKind::kGreedyDensity,
            core::AllocatorKind::kGreedyDeadline,
            core::AllocatorKind::kCriticalPath,
            core::AllocatorKind::kEnergyAware,
            core::AllocatorKind::kResidencyConstrained}) {
        combos.push_back(Combo{bench, packer, allocator});
      }
    }
  }
  return combos;
}

class PackerAllocatorMatrixTest : public testing::TestWithParam<Combo> {};

TEST_P(PackerAllocatorMatrixTest, ValidatedAndWithinBounds) {
  const Combo& combo = GetParam();
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark(combo.benchmark));
  const pim::PimConfig config = pim::PimConfig::neurocube(32);

  core::ParaConvOptions options;
  options.packer = combo.packer;
  options.allocator = combo.allocator;
  const core::ParaConvResult r = core::ParaConv(config, options).schedule(g);

  const auto issues = sched::validate_kernel_schedule(
      g, r.kernel, config, config.total_cache_bytes());
  ASSERT_TRUE(issues.empty()) << issues.front();

  EXPECT_GE(r.kernel.period, sched::period_lower_bound(g, config.pe_count));
  EXPECT_GE(r.metrics.r_max,
            sched::retiming_lower_bound(g, r.kernel.period));
  EXPECT_LE(r.metrics.cache_bytes_used, config.total_cache_bytes());
  for (const retiming::EdgeDelta& d : r.deltas) {
    EXPECT_GE(d.cache, 0);
    EXPECT_LE(d.cache, d.edram);
    EXPECT_LE(d.edram, 2);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PackerAllocatorMatrixTest, testing::ValuesIn(all_combos()),
    [](const testing::TestParamInfo<Combo>& pi) {
      std::string name = std::string(pi.param.benchmark) + "_p" +
                         std::to_string(static_cast<int>(pi.param.packer)) +
                         "_a" +
                         std::to_string(static_cast<int>(pi.param.allocator));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace paraconv
