// Static/dynamic cross-check: every schedule the analytic pipeline emits
// must replay on the event-driven machine model with zero data-readiness
// violations, and the observed makespan must match the analytic expansion.
#include <gtest/gtest.h>

#include "core/para_conv.hpp"
#include "graph/paper_benchmarks.hpp"
#include "pim/machine.hpp"

namespace paraconv {
namespace {

class MachineCrossCheckTest : public testing::TestWithParam<const char*> {};

TEST_P(MachineCrossCheckTest, ReplayIsCleanAndTimingsAgree) {
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark(GetParam()));
  const pim::PimConfig config = pim::PimConfig::neurocube(32);
  const core::ParaConvResult r = core::ParaConv(config).schedule(g);

  constexpr std::int64_t kIterations = 6;
  pim::Machine machine(config);
  const pim::MachineStats stats =
      machine.run(g, r.kernel, {.iterations = kIterations, .strict = true});

  EXPECT_EQ(stats.readiness_violations, 0);
  EXPECT_EQ(stats.tasks_executed,
            kIterations * static_cast<std::int64_t>(g.node_count()));

  // Analytic makespan: the last window is kIterations - 1 + R_max; the
  // machine must finish inside that window.
  const sched::ExpandedSchedule expanded =
      sched::expand_schedule(g, r.kernel, kIterations);
  EXPECT_EQ(stats.makespan, expanded.makespan);
  EXPECT_LE(stats.makespan.value,
            (kIterations + r.metrics.r_max) * r.kernel.period.value);
}

TEST_P(MachineCrossCheckTest, SteadyStatePeriodMatchesAnalyticP) {
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark(GetParam()));
  const pim::PimConfig config = pim::PimConfig::neurocube(32);
  const core::ParaConvResult r = core::ParaConv(config).schedule(g);

  // Makespan difference between n and n+1 iterations is exactly one period
  // once the pipeline is full.
  pim::Machine m1(config);
  pim::Machine m2(config);
  const auto s4 = m1.run(g, r.kernel, {.iterations = 4});
  const auto s5 = m2.run(g, r.kernel, {.iterations = 5});
  EXPECT_EQ((s5.makespan - s4.makespan).value, r.kernel.period.value);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, MachineCrossCheckTest,
                         testing::Values("cat", "flower", "character-1",
                                         "stock-predict", "shortest-path"),
                         [](const testing::TestParamInfo<const char*>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(MachineCrossCheckTest, CachedVolumeWithinPerPeCapacityHasFewFallbacks) {
  // The knapsack treats the PE-array cache as one pool; the machine tracks
  // per-PE caches. Fallbacks may occur but must stay a small fraction of
  // consumptions.
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark("character-2"));
  const pim::PimConfig config = pim::PimConfig::neurocube(32);
  const core::ParaConvResult r = core::ParaConv(config).schedule(g);
  pim::Machine machine(config);
  const auto stats = machine.run(g, r.kernel, {.iterations = 10});
  const std::int64_t consumptions =
      10 * static_cast<std::int64_t>(g.edge_count());
  EXPECT_LT(stats.cache_fallbacks, consumptions / 4);
}

}  // namespace
}  // namespace paraconv
