#include "retiming/delta.hpp"

#include <gtest/gtest.h>

#include "graph/generator.hpp"
#include "sched/packer.hpp"

namespace paraconv::retiming {
namespace {

pim::PimConfig config() {
  pim::PimConfig cfg;
  cfg.pe_count = 4;
  cfg.cache_bytes_per_unit = 4 * 1024;
  cfg.edram_bytes_per_unit = 512;
  cfg.validate();
  return cfg;
}

TEST(RequiredDistanceTest, ZeroWhenSlackCoversTransfer) {
  // Producer 0..2, transfer 1, consumer at 3: ready exactly in time.
  EXPECT_EQ(required_distance(TimeUnits{0}, TimeUnits{2}, TimeUnits{1},
                              TimeUnits{3}, TimeUnits{5}),
            0);
}

TEST(RequiredDistanceTest, OneWhenDeficitWithinOnePeriod) {
  EXPECT_EQ(required_distance(TimeUnits{0}, TimeUnits{2}, TimeUnits{2},
                              TimeUnits{3}, TimeUnits{5}),
            1);
  EXPECT_EQ(required_distance(TimeUnits{3}, TimeUnits{2}, TimeUnits{1},
                              TimeUnits{1}, TimeUnits{5}),
            1);
}

TEST(RequiredDistanceTest, TwoAtTheTheoremBound) {
  // Worst case: producer ends at p, transfer p, consumer at 0.
  EXPECT_EQ(required_distance(TimeUnits{3}, TimeUnits{2}, TimeUnits{5},
                              TimeUnits{0}, TimeUnits{5}),
            2);
}

TEST(RequiredDistanceTest, ExactBoundaryNeedsNoExtraIteration) {
  // Deficit exactly k*p requires exactly k.
  EXPECT_EQ(required_distance(TimeUnits{0}, TimeUnits{5}, TimeUnits{5},
                              TimeUnits{0}, TimeUnits{5}),
            2);
  EXPECT_EQ(required_distance(TimeUnits{0}, TimeUnits{3}, TimeUnits{2},
                              TimeUnits{0}, TimeUnits{5}),
            1);
}

TEST(EffectiveTransferTest, ClampsToPeriod) {
  const pim::PimConfig cfg = config();
  EXPECT_EQ(effective_transfer(cfg, pim::AllocSite::kEdram, 64_KiB,
                               TimeUnits{7}),
            TimeUnits{7});
  EXPECT_EQ(effective_transfer(cfg, pim::AllocSite::kCache, 1_KiB,
                               TimeUnits{7}),
            TimeUnits{1});
}

struct DeltaCase {
  std::size_t vertices;
  std::size_t edges;
  int pe_count;
  std::uint64_t seed;
};

class DeltaPropertyTest : public testing::TestWithParam<DeltaCase> {};

/// Theorem 3.1 property: every delta pair lies in the envelope
/// 0 <= cache <= edram <= 2, for any packing produced by either packer.
TEST_P(DeltaPropertyTest, Theorem31EnvelopeHolds) {
  const auto& c = GetParam();
  graph::GeneratorConfig gen;
  gen.vertices = c.vertices;
  gen.edges = c.edges;
  gen.seed = c.seed;
  const graph::TaskGraph g = graph::generate_layered_dag(gen);
  const pim::PimConfig cfg = pim::PimConfig::neurocube(c.pe_count);

  for (const bool topological : {true, false}) {
    const sched::Packing packing =
        topological ? sched::pack_topological(g, c.pe_count)
                    : sched::pack_ignore_dependencies(g, c.pe_count);
    const auto deltas =
        compute_edge_deltas(g, packing.placement, packing.period, cfg);
    ASSERT_EQ(deltas.size(), g.edge_count());
    for (const EdgeDelta& d : deltas) {
      EXPECT_GE(d.cache, 0);
      EXPECT_LE(d.cache, d.edram);
      EXPECT_LE(d.edram, 2);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, DeltaPropertyTest,
    testing::Values(DeltaCase{9, 21, 4, 1}, DeltaCase{9, 21, 64, 2},
                    DeltaCase{52, 130, 16, 3}, DeltaCase{52, 130, 64, 4},
                    DeltaCase{191, 506, 16, 5}, DeltaCase{191, 506, 64, 6},
                    DeltaCase{546, 1449, 32, 7}, DeltaCase{20, 60, 1, 8}));

TEST(DeltaTest, TopologicalPackingBoundsDeficitByExecPlusTransfer) {
  // Topological packing orders producers no later than consumers
  // (s_i <= s_j), so the deficit of edge (i, j) is at most c_i + c_ij and
  // each per-edge distance is bounded by ceil((c_i + c_ij) / p) — a
  // strictly tighter envelope than Theorem 3.1's generic bound of 2.
  graph::GeneratorConfig gen;
  gen.vertices = 100;
  gen.edges = 260;
  gen.seed = 17;
  const graph::TaskGraph g = graph::generate_layered_dag(gen);
  const pim::PimConfig cfg = pim::PimConfig::neurocube(16);

  const sched::Packing p = sched::pack_topological(g, 16);
  const auto deltas = compute_edge_deltas(g, p.placement, p.period, cfg);
  for (const graph::EdgeId e : g.edges()) {
    const graph::Ipr& ipr = g.ipr(e);
    const TimeUnits transfer = effective_transfer(
        cfg, pim::AllocSite::kEdram, ipr.size, p.period);
    const int bound = static_cast<int>(
        ceil_div(g.task(ipr.src).exec_time.value + transfer.value,
                 p.period.value));
    EXPECT_LE(deltas[e.value].edram, bound);
  }
}

TEST(DeltaTest, MisfitPlacementRejected) {
  graph::TaskGraph g("misfit");
  const auto a = g.add_task(
      graph::Task{"A", graph::TaskKind::kConvolution, TimeUnits{4}});
  const auto b = g.add_task(
      graph::Task{"B", graph::TaskKind::kConvolution, TimeUnits{1}});
  g.add_ipr(a, b, 1_KiB);
  const std::vector<sched::TaskPlacement> placement{
      {0, TimeUnits{2}}, {1, TimeUnits{0}}};  // A ends at 6 > period 5
  EXPECT_THROW(
      compute_edge_deltas(g, placement, TimeUnits{5}, config()),
      ContractViolation);
}

TEST(RequiredDistanceTest, RejectsNonPositivePeriod) {
  EXPECT_THROW(required_distance(TimeUnits{0}, TimeUnits{1}, TimeUnits{1},
                                 TimeUnits{0}, TimeUnits{0}),
               ContractViolation);
}

}  // namespace
}  // namespace paraconv::retiming
