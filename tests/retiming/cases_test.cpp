#include "retiming/cases.hpp"

#include <gtest/gtest.h>

namespace paraconv::retiming {
namespace {

struct CaseRow {
  int cache;
  int edram;
  AllocationCase expected;
  int expected_delta_r;
};

class SixCasesTest : public testing::TestWithParam<CaseRow> {};

TEST_P(SixCasesTest, ClassificationMatchesFigure4) {
  const auto& row = GetParam();
  const EdgeDelta d{row.cache, row.edram};
  EXPECT_EQ(classify(d), row.expected);
  EXPECT_EQ(delta_r(d), row.expected_delta_r);
  EXPECT_EQ(allocation_sensitive(d), row.expected_delta_r > 0);
}

INSTANTIATE_TEST_SUITE_P(
    Figure4, SixCasesTest,
    testing::Values(CaseRow{0, 0, AllocationCase::kCase1, 0},
                    CaseRow{0, 1, AllocationCase::kCase2, 1},
                    CaseRow{0, 2, AllocationCase::kCase3, 2},
                    CaseRow{1, 1, AllocationCase::kCase4, 0},
                    CaseRow{1, 2, AllocationCase::kCase5, 1},
                    CaseRow{2, 2, AllocationCase::kCase6, 0}));

TEST(SixCasesTest, EnvelopeIsExhaustive) {
  // Every legal (cache <= edram <= 2) pair maps to one of the six cases;
  // exactly the six pairs exist.
  int count = 0;
  for (int cache = 0; cache <= 2; ++cache) {
    for (int edram = cache; edram <= 2; ++edram) {
      EXPECT_NO_THROW(classify(EdgeDelta{cache, edram}));
      ++count;
    }
  }
  EXPECT_EQ(count, 6);
}

TEST(SixCasesTest, InvalidPairsRejected) {
  EXPECT_THROW(classify(EdgeDelta{2, 1}), ContractViolation);   // cache > edram
  EXPECT_THROW(classify(EdgeDelta{-1, 0}), ContractViolation);  // negative
  EXPECT_THROW(classify(EdgeDelta{0, 3}), ContractViolation);   // beyond bound
  EXPECT_THROW(delta_r(EdgeDelta{2, 0}), ContractViolation);
}

TEST(SixCasesTest, InsensitiveCasesAreOneFourSix) {
  // Paper Sec. 3.2: cases 1, 4 and 6 do not change the prologue.
  EXPECT_FALSE(allocation_sensitive(EdgeDelta{0, 0}));
  EXPECT_FALSE(allocation_sensitive(EdgeDelta{1, 1}));
  EXPECT_FALSE(allocation_sensitive(EdgeDelta{2, 2}));
  EXPECT_TRUE(allocation_sensitive(EdgeDelta{0, 1}));
  EXPECT_TRUE(allocation_sensitive(EdgeDelta{0, 2}));
  EXPECT_TRUE(allocation_sensitive(EdgeDelta{1, 2}));
}

TEST(SixCasesTest, Names) {
  EXPECT_STREQ(to_string(AllocationCase::kCase1), "case1(0,0)");
  EXPECT_STREQ(to_string(AllocationCase::kCase6), "case6(2,2)");
}

}  // namespace
}  // namespace paraconv::retiming
