#include "retiming/retiming.hpp"

#include <gtest/gtest.h>

#include "graph/generator.hpp"

namespace paraconv::retiming {
namespace {

using graph::NodeId;
using graph::Task;
using graph::TaskGraph;
using graph::TaskKind;

TaskGraph diamond() {
  TaskGraph g("diamond");
  const NodeId a = g.add_task(Task{"A", TaskKind::kConvolution, TimeUnits{1}});
  const NodeId b = g.add_task(Task{"B", TaskKind::kConvolution, TimeUnits{1}});
  const NodeId c = g.add_task(Task{"C", TaskKind::kConvolution, TimeUnits{1}});
  const NodeId d = g.add_task(Task{"D", TaskKind::kConvolution, TimeUnits{1}});
  g.add_ipr(a, b, 1_KiB);  // edge 0
  g.add_ipr(a, c, 1_KiB);  // edge 1
  g.add_ipr(b, d, 1_KiB);  // edge 2
  g.add_ipr(c, d, 1_KiB);  // edge 3
  return g;
}

TEST(MinimalRetimingTest, LongestPathOfDistances) {
  const TaskGraph g = diamond();
  const Retiming r = minimal_retiming(g, {1, 0, 2, 1});
  EXPECT_EQ(r.value[3], 0);  // sink
  EXPECT_EQ(r.value[1], 2);  // B: edge 2
  EXPECT_EQ(r.value[2], 1);  // C: edge 3
  EXPECT_EQ(r.value[0], 3);  // A: max(1+2, 0+1)
  EXPECT_EQ(r.r_max(), 3);
}

TEST(MinimalRetimingTest, ZeroDistancesNeedNoRetiming) {
  const TaskGraph g = diamond();
  const Retiming r = minimal_retiming(g, {0, 0, 0, 0});
  EXPECT_EQ(r.r_max(), 0);
}

TEST(MinimalRetimingTest, IsAlwaysLegal) {
  graph::GeneratorConfig gen;
  gen.vertices = 60;
  gen.edges = 150;
  gen.seed = 4;
  const TaskGraph g = graph::generate_layered_dag(gen);
  std::vector<int> required(g.edge_count());
  for (std::size_t e = 0; e < required.size(); ++e) {
    required[e] = static_cast<int>(e % 3);  // distances in {0,1,2}
  }
  const Retiming r = minimal_retiming(g, required);
  EXPECT_TRUE(is_legal(g, r, required));
}

TEST(MinimalRetimingTest, IsMinimal) {
  // Reducing any positive retiming value by one breaks legality for graphs
  // where each value is forced (a simple chain makes every value tight).
  TaskGraph g("chain");
  NodeId prev = g.add_task(Task{"t0", TaskKind::kConvolution, TimeUnits{1}});
  for (int i = 1; i < 4; ++i) {
    const NodeId cur = g.add_task(
        Task{"t" + std::to_string(i), TaskKind::kConvolution, TimeUnits{1}});
    g.add_ipr(prev, cur, 1_KiB);
    prev = cur;
  }
  const std::vector<int> required{1, 1, 1};
  const Retiming r = minimal_retiming(g, required);
  EXPECT_EQ(r.r_max(), 3);
  for (std::size_t i = 0; i < r.value.size(); ++i) {
    if (r.value[i] == 0) continue;
    Retiming lowered = r;
    --lowered.value[i];
    EXPECT_FALSE(is_legal(g, lowered, required)) << "node " << i;
  }
}

TEST(IsLegalTest, DetectsViolations) {
  const TaskGraph g = diamond();
  const std::vector<int> required{1, 0, 0, 0};
  Retiming r;
  r.value = {0, 0, 0, 0};  // edge 0 needs distance 1
  EXPECT_FALSE(is_legal(g, r, required));
  r.value = {1, 0, 0, 0};
  EXPECT_TRUE(is_legal(g, r, required));
  r.value = {1, -1, 0, 0};  // negative value
  EXPECT_FALSE(is_legal(g, r, required));
  r.value = {1, 0, 0};  // wrong arity
  EXPECT_FALSE(is_legal(g, r, required));
}

TEST(RealizedDistancesTest, MatchesValueDifferences) {
  const TaskGraph g = diamond();
  Retiming r;
  r.value = {3, 2, 1, 0};
  const auto d = realized_distances(g, r);
  EXPECT_EQ(d, (std::vector<int>{1, 2, 2, 1}));
}

TEST(MinimalRetimingTest, RejectsInvalidArguments) {
  const TaskGraph g = diamond();
  EXPECT_THROW(minimal_retiming(g, {1, 0}), ContractViolation);
  EXPECT_THROW(minimal_retiming(g, {1, 0, -1, 0}), ContractViolation);
}

}  // namespace
}  // namespace paraconv::retiming
