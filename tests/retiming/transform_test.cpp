#include "retiming/transform.hpp"

#include <gtest/gtest.h>

#include "core/para_conv.hpp"
#include "graph/paper_benchmarks.hpp"

namespace paraconv::retiming {
namespace {

using graph::NodeId;
using graph::Task;
using graph::TaskGraph;
using graph::TaskKind;

TaskGraph chain3() {
  TaskGraph g("chain3");
  const NodeId a = g.add_task(Task{"a", TaskKind::kConvolution, TimeUnits{1}});
  const NodeId b = g.add_task(Task{"b", TaskKind::kConvolution, TimeUnits{1}});
  const NodeId c = g.add_task(Task{"c", TaskKind::kConvolution, TimeUnits{1}});
  g.add_ipr(a, b, 1_KiB);
  g.add_ipr(b, c, 1_KiB);
  return g;
}

TEST(UnrollTest, InstanceGridAndDependencies) {
  const TaskGraph g = chain3();
  Retiming r;
  r.value = {2, 1, 0};  // both edges distance 1
  const UnrolledDag dag = unroll(g, r, 3);

  EXPECT_EQ(dag.instances.size(), 9U);  // 3 windows x 3 tasks
  // Window 0 consumers read from window -1: both edges are boundary reads
  // once; windows 1 and 2 have real dependencies.
  EXPECT_EQ(dag.dependencies.size(), 4U);
  EXPECT_EQ(dag.boundary_reads[0], 1);
  EXPECT_EQ(dag.boundary_reads[1], 1);

  for (const auto& [producer, consumer] : dag.dependencies) {
    // Producer is always in an earlier window than the consumer.
    EXPECT_LT(dag.instances[producer].window, dag.instances[consumer].window);
  }
}

TEST(UnrollTest, ZeroDistanceKeepsSameWindow) {
  const TaskGraph g = chain3();
  Retiming r;
  r.value = {0, 0, 0};
  const UnrolledDag dag = unroll(g, r, 2);
  EXPECT_EQ(dag.dependencies.size(), 4U);  // no boundary reads
  EXPECT_EQ(dag.boundary_reads[0], 0);
  for (const auto& [producer, consumer] : dag.dependencies) {
    EXPECT_EQ(dag.instances[producer].window,
              dag.instances[consumer].window);
  }
}

TEST(UnrollTest, IllegalRetimingRejected) {
  const TaskGraph g = chain3();
  Retiming r;
  r.value = {0, 1, 0};  // edge a->b has distance -1
  EXPECT_THROW(unroll(g, r, 2), ContractViolation);
  EXPECT_THROW(unroll(g, Retiming{{0, 0}}, 2), ContractViolation);
}

TEST(UnrolledIsExecutableTest, FullyRetimedGraphIsWindowParallel) {
  const TaskGraph g = chain3();
  Retiming r;
  r.value = {2, 1, 0};
  EXPECT_TRUE(unrolled_is_executable(g, r));
}

TEST(UnrolledIsExecutableTest, ZeroDistancesStillExecutableForDag) {
  // All dependencies stay intra-window but the graph itself is acyclic, so
  // window-by-window execution remains possible (with in-window ordering).
  const TaskGraph g = chain3();
  Retiming r;
  r.value = {0, 0, 0};
  EXPECT_TRUE(unrolled_is_executable(g, r));
}

TEST(UnrolledIsExecutableTest, NegativeDistanceNotExecutable) {
  const TaskGraph g = chain3();
  Retiming r;
  r.value = {0, 1, 0};
  EXPECT_FALSE(unrolled_is_executable(g, r));
}

TEST(UnrollTest, ParaConvRetimingAlwaysExecutable) {
  for (const char* name : {"cat", "flower", "character-1"}) {
    const graph::TaskGraph g =
        graph::build_paper_benchmark(graph::paper_benchmark(name));
    const core::ParaConvResult result =
        core::ParaConv(pim::PimConfig::neurocube(16)).schedule(g);
    Retiming r;
    r.value = result.kernel.retiming;
    EXPECT_TRUE(unrolled_is_executable(g, r)) << name;

    const UnrolledDag dag = unroll(g, r, 4);
    EXPECT_EQ(dag.instances.size(), 4U * g.node_count());
    // Total reads = dependencies + boundary reads = 4 * |E|.
    std::int64_t boundary = 0;
    for (const std::int64_t b : dag.boundary_reads) boundary += b;
    EXPECT_EQ(dag.dependencies.size() + static_cast<std::size_t>(boundary),
              4U * g.edge_count());
  }
}

}  // namespace
}  // namespace paraconv::retiming
