#include "report/gantt.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace paraconv::report {
namespace {

using graph::NodeId;
using graph::Task;
using graph::TaskGraph;
using graph::TaskKind;
using sched::KernelSchedule;
using sched::TaskPlacement;

struct Fixture {
  TaskGraph g{"gantt"};
  KernelSchedule kernel;

  Fixture() {
    const NodeId a = g.add_task(Task{"A", TaskKind::kConvolution, TimeUnits{2}});
    const NodeId b = g.add_task(Task{"B", TaskKind::kConvolution, TimeUnits{3}});
    g.add_ipr(a, b, 1_KiB);
    kernel.period = TimeUnits{5};
    kernel.placement = {TaskPlacement{0, TimeUnits{0}},
                        TaskPlacement{1, TimeUnits{2}}};
    kernel.retiming = {0, 0};
    kernel.distance = {0};
    kernel.allocation = {pim::AllocSite::kCache};
  }
};

TEST(GanttTest, KernelShowsTasksAndIdle) {
  const Fixture f;
  const std::string out = render_kernel_gantt(f.g, f.kernel, 2);
  EXPECT_NE(out.find("kernel period p = 5"), std::string::npos);
  EXPECT_NE(out.find("PE0 |A=...|"), std::string::npos);
  EXPECT_NE(out.find("PE1 |..B==|"), std::string::npos);
}

TEST(GanttTest, EveryPeGetsARow) {
  const Fixture f;
  const std::string out = render_kernel_gantt(f.g, f.kernel, 4);
  EXPECT_NE(out.find("PE2"), std::string::npos);
  EXPECT_NE(out.find("PE3"), std::string::npos);
}

TEST(GanttTest, LongKernelTruncated) {
  Fixture f;
  f.kernel.period = TimeUnits{500};
  GanttOptions options;
  options.max_width = 20;
  const std::string out = render_kernel_gantt(f.g, f.kernel, 2, options);
  EXPECT_NE(out.find("..."), std::string::npos);
  // Each row width: "PE0 |" + 20 cells + "..." = bounded.
  std::istringstream in(out);
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    EXPECT_LE(line.size(), 5U + 20U + 3U);
  }
}

TEST(GanttTest, ExpandedShowsPrologueHeader) {
  Fixture f;
  f.kernel.retiming = {1, 0};
  f.kernel.distance = {1};
  const std::string out = render_expanded_gantt(f.g, f.kernel, 2, 3);
  EXPECT_NE(out.find("prologue: 1 windows (5 time units)"),
            std::string::npos);
  // Window 0 holds only A; B appears from window 1.
  const std::size_t pe1 = out.find("PE1 |");
  ASSERT_NE(pe1, std::string::npos);
  EXPECT_EQ(out.substr(pe1 + 5, 5), ".....");
}

TEST(GanttTest, LabelTailUsedForHierarchicalNames) {
  TaskGraph g("named");
  g.add_task(Task{"inception_3a/T7", TaskKind::kConvolution, TimeUnits{2}});
  KernelSchedule k;
  k.period = TimeUnits{3};
  k.placement = {TaskPlacement{0, TimeUnits{0}}};
  k.retiming = {0};
  const std::string out = render_kernel_gantt(g, k, 1);
  EXPECT_NE(out.find("T7"), std::string::npos);
}

TEST(GanttTest, RejectsInvalidArguments) {
  const Fixture f;
  EXPECT_THROW(render_kernel_gantt(f.g, f.kernel, 0), ContractViolation);
  GanttOptions bad;
  bad.max_width = 0;
  EXPECT_THROW(render_kernel_gantt(f.g, f.kernel, 2, bad), ContractViolation);
  EXPECT_THROW(render_expanded_gantt(f.g, f.kernel, 2, 0), ContractViolation);
}

}  // namespace
}  // namespace paraconv::report
