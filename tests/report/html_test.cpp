#include "report/html.hpp"

#include <gtest/gtest.h>

#include "graph/paper_benchmarks.hpp"

namespace paraconv::report {
namespace {

struct Rendered {
  graph::TaskGraph g;
  pim::PimConfig config;
  core::ParaConvResult result;
  std::string html;

  explicit Rendered(const char* bench, int pes = 16)
      : g(graph::build_paper_benchmark(graph::paper_benchmark(bench))),
        config(pim::PimConfig::neurocube(pes)),
        result(core::ParaConv(config).schedule(g)),
        html(render_html_report(g, config, result)) {}
};

TEST(HtmlReportTest, ContainsStructureAndMetrics) {
  const Rendered r("flower");
  EXPECT_EQ(r.html.rfind("<!DOCTYPE html>", 0), 0U);
  EXPECT_NE(r.html.find("</html>"), std::string::npos);
  EXPECT_NE(r.html.find("<svg"), std::string::npos);
  EXPECT_NE(r.html.find("flower on 16 PEs"), std::string::npos);
  EXPECT_NE(r.html.find("kernel period p"), std::string::npos);
  EXPECT_NE(r.html.find("R_max / prologue"), std::string::npos);
  EXPECT_NE(r.html.find("case 6"), std::string::npos);
}

TEST(HtmlReportTest, OneLaneLabelPerPe) {
  const Rendered r("cat", 8);
  for (int pe = 0; pe < 8; ++pe) {
    EXPECT_NE(r.html.find(">PE" + std::to_string(pe) + "<"),
              std::string::npos);
  }
}

TEST(HtmlReportTest, TaskBlocksCarryTooltips) {
  const Rendered r("cat");
  // Every instance rect has a <title> tooltip with the task name.
  EXPECT_NE(r.html.find("<title>cat_T1 (iter 0"), std::string::npos);
  std::size_t rects = 0;
  for (std::size_t pos = r.html.find("<rect"); pos != std::string::npos;
       pos = r.html.find("<rect", pos + 1)) {
    ++rects;
  }
  // Windows default to R_max + 3; every window holds at most node_count
  // instances and the steady windows hold exactly node_count.
  EXPECT_GE(rects, r.g.node_count());
}

TEST(HtmlReportTest, EscapesMarkupInNames) {
  graph::TaskGraph g("x<y&z");
  g.add_task({"a<b", graph::TaskKind::kConvolution, TimeUnits{1}});
  g.add_task({"c", graph::TaskKind::kConvolution, TimeUnits{1}});
  g.add_ipr(graph::NodeId{0}, graph::NodeId{1}, 1_KiB);
  const pim::PimConfig config = pim::PimConfig::neurocube(16);
  const core::ParaConvResult result = core::ParaConv(config).schedule(g);
  const std::string html = render_html_report(g, config, result);
  EXPECT_EQ(html.find("a<b"), std::string::npos);
  EXPECT_NE(html.find("a&lt;b"), std::string::npos);
  EXPECT_NE(html.find("x&lt;y&amp;z"), std::string::npos);
}

TEST(HtmlReportTest, RejectsInvalidOptions) {
  const Rendered r("cat");
  HtmlReportOptions bad;
  bad.px_per_unit = 0;
  EXPECT_THROW(render_html_report(r.g, r.config, r.result, bad),
               ContractViolation);
}

}  // namespace
}  // namespace paraconv::report
