#include "report/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace paraconv::report {
namespace {

TEST(CsvEscapeTest, PlainFieldsUntouched) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("with space"), "with space");
}

TEST(CsvEscapeTest, QuotesFieldsWithSeparators) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  // A bare CR tears the row on CRLF-aware readers unless quoted.
  EXPECT_EQ(csv_escape("line\rbreak"), "\"line\rbreak\"");
}

TEST(CsvExportTest, WritesHeaderAndRows) {
  bench_support::ExperimentRow row;
  row.benchmark = "cat";
  row.vertices = 9;
  row.edges = 21;
  row.pe_count = 16;
  row.sparta.iteration_time = TimeUnits{10};
  row.sparta.total_time = TimeUnits{1000};
  row.sparta.cached_iprs = 4;
  row.para_conv.iteration_time = TimeUnits{5};
  row.para_conv.r_max = 3;
  row.para_conv.prologue_time = TimeUnits{15};
  row.para_conv.total_time = TimeUnits{515};
  row.para_conv.cached_iprs = 6;
  row.para_conv.offchip_bytes_per_iteration = 2_KiB;

  std::ostringstream os;
  write_experiment_csv(os, {row});
  const std::string out = os.str();

  std::istringstream in(out);
  std::string header;
  std::string data;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, data));
  EXPECT_EQ(header.rfind("benchmark,vertices,edges,pe_count", 0), 0U);
  EXPECT_EQ(data, "cat,9,21,16,10,1000,4,5,3,15,515,6,2048,51.50,48.50");
}

TEST(CsvExportTest, OneLinePerRow) {
  std::vector<bench_support::ExperimentRow> rows(3);
  for (auto& r : rows) {
    r.benchmark = "x";
    r.sparta.total_time = TimeUnits{10};
    r.para_conv.total_time = TimeUnits{5};
    r.sparta.iteration_time = TimeUnits{1};
    r.para_conv.iteration_time = TimeUnits{1};
  }
  std::ostringstream os;
  write_experiment_csv(os, rows);
  std::size_t lines = 0;
  std::istringstream in(os.str());
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 4U);  // header + 3 rows
}

}  // namespace
}  // namespace paraconv::report
