#include "report/trace.hpp"

#include <gtest/gtest.h>

#include "core/para_conv.hpp"
#include "graph/paper_benchmarks.hpp"

namespace paraconv::report {
namespace {

using graph::NodeId;
using graph::Task;
using graph::TaskGraph;
using graph::TaskKind;

struct Fixture {
  TaskGraph g{"trace"};
  sched::KernelSchedule kernel;

  Fixture() {
    const NodeId a = g.add_task(Task{"A", TaskKind::kConvolution, TimeUnits{2}});
    const NodeId b = g.add_task(Task{"B", TaskKind::kPooling, TimeUnits{1}});
    g.add_ipr(a, b, 1_KiB);
    kernel.period = TimeUnits{4};
    kernel.placement = {sched::TaskPlacement{0, TimeUnits{0}},
                        sched::TaskPlacement{1, TimeUnits{2}}};
    kernel.retiming = {0, 0};
    kernel.distance = {0};
    kernel.allocation = {pim::AllocSite::kCache};
  }
};

TEST(TraceTest, EmitsOneCompleteEventPerInstance) {
  const Fixture f;
  const std::string trace = to_chrome_trace(f.g, f.kernel, {.iterations = 3});
  std::size_t events = 0;
  for (std::size_t pos = trace.find("\"ph\":\"X\""); pos != std::string::npos;
       pos = trace.find("\"ph\":\"X\"", pos + 1)) {
    ++events;
  }
  EXPECT_EQ(events, 6U);  // 2 tasks x 3 iterations
  EXPECT_EQ(trace.front(), '[');
  EXPECT_EQ(trace.back(), ']');
}

TEST(TraceTest, TimesScaleWithConfiguredUnit) {
  const Fixture f;
  TraceOptions options;
  options.iterations = 1;
  options.ns_per_time_unit = 2000;  // 2us per unit
  const std::string trace = to_chrome_trace(f.g, f.kernel, options);
  // B starts at offset 2 units = 4us, duration 1 unit = 2us.
  EXPECT_NE(trace.find("\"ts\":4"), std::string::npos);
  EXPECT_NE(trace.find("\"dur\":2"), std::string::npos);
}

TEST(TraceTest, CarriesPeAndIterationMetadata) {
  const Fixture f;
  const std::string trace = to_chrome_trace(f.g, f.kernel, {.iterations = 2});
  EXPECT_NE(trace.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(trace.find("\"iteration\":1"), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"pool\""), std::string::npos);
}

TEST(TraceTest, RealScheduleProducesParseableSkeleton) {
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark("cat"));
  const core::ParaConvResult r =
      core::ParaConv(pim::PimConfig::neurocube(16)).schedule(g);
  const std::string trace = to_chrome_trace(g, r.kernel, {.iterations = 2});
  // Balanced brackets and braces (cheap well-formedness check).
  std::int64_t braces = 0;
  std::int64_t brackets = 0;
  for (const char c : trace) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(TraceTest, MemoryTraceAddsMemoryLane) {
  const Fixture f;
  pim::PimConfig config;
  config.pe_count = 2;
  config.pe_cache_bytes = 4_KiB;
  config.validate();
  const std::string trace =
      to_chrome_trace_with_memory(f.g, f.kernel, config, {.iterations = 2});
  EXPECT_NE(trace.find("\"cat\":\"memory\""), std::string::npos);
  EXPECT_NE(trace.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(trace.find("cache-insert"), std::string::npos);
  EXPECT_NE(trace.find("cache-hit"), std::string::npos);
  // Compute lane still present.
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
}

TEST(MemoryObserverTest, EventsArriveInTimeOrderWithCounts) {
  Fixture f;
  // Leave slack for the cross-PE hand-off so strict replay is clean.
  f.kernel.placement[1].start = TimeUnits{3};
  pim::PimConfig config;
  config.pe_count = 2;
  config.pe_cache_bytes = 4_KiB;
  config.validate();
  pim::Machine machine(config);
  std::vector<pim::MemoryEvent> seen;
  pim::MachineRunOptions options;
  options.iterations = 3;
  options.observer = [&](const pim::MemoryEvent& ev) { seen.push_back(ev); };
  machine.run(f.g, f.kernel, options);

  // One cached edge: insert + hit per iteration.
  std::size_t inserts = 0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < seen.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(seen[i].time, seen[i - 1].time);
    }
    if (seen[i].kind == pim::MemoryEvent::Kind::kCacheInsert) ++inserts;
    if (seen[i].kind == pim::MemoryEvent::Kind::kCacheHit) ++hits;
  }
  EXPECT_EQ(inserts, 3U);
  EXPECT_EQ(hits, 3U);
}

TEST(MemoryObserverTest, KindNames) {
  EXPECT_STREQ(pim::to_string(pim::MemoryEvent::Kind::kCacheInsert),
               "cache-insert");
  EXPECT_STREQ(pim::to_string(pim::MemoryEvent::Kind::kVaultRead),
               "vault-read");
  EXPECT_STREQ(pim::to_string(pim::MemoryEvent::Kind::kWeightFetch),
               "weight-fetch");
}

TEST(TraceTest, RejectsInvalidOptions) {
  const Fixture f;
  EXPECT_THROW(to_chrome_trace(f.g, f.kernel, {.iterations = 0}),
               ContractViolation);
  EXPECT_THROW(
      to_chrome_trace(f.g, f.kernel, {.iterations = 1, .ns_per_time_unit = 0}),
      ContractViolation);
}

}  // namespace
}  // namespace paraconv::report
