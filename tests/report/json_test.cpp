#include "report/json.hpp"

#include <gtest/gtest.h>

#include "core/para_conv.hpp"
#include "graph/paper_benchmarks.hpp"

namespace paraconv::report {
namespace {

TEST(JsonValueTest, Scalars) {
  EXPECT_EQ(JsonValue{}.dump(), "null");
  EXPECT_EQ(JsonValue{true}.dump(), "true");
  EXPECT_EQ(JsonValue{false}.dump(), "false");
  EXPECT_EQ(JsonValue{std::int64_t{42}}.dump(), "42");
  EXPECT_EQ(JsonValue{-7}.dump(), "-7");
  EXPECT_EQ(JsonValue{1.5}.dump(), "1.5");
  EXPECT_EQ(JsonValue{"hi"}.dump(), "\"hi\"");
}

TEST(JsonValueTest, ArraysAndObjects) {
  JsonValue arr = JsonValue::array();
  arr.push_back(1).push_back("two").push_back(JsonValue{});
  EXPECT_EQ(arr.dump(), "[1,\"two\",null]");

  JsonValue obj = JsonValue::object();
  obj.set("a", 1).set("b", JsonValue::array());
  EXPECT_EQ(obj.dump(), "{\"a\":1,\"b\":[]}");
}

TEST(JsonValueTest, SetOverwritesExistingKey) {
  JsonValue obj = JsonValue::object();
  obj.set("k", 1);
  obj.set("k", 2);
  EXPECT_EQ(obj.dump(), "{\"k\":2}");
}

TEST(JsonValueTest, EscapesSpecialCharacters) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string{"\x01"}), "\\u0001");
  EXPECT_EQ(JsonValue{"x\ty"}.dump(), "\"x\\ty\"");
}

TEST(JsonValueTest, PrettyPrintIndents) {
  JsonValue obj = JsonValue::object();
  obj.set("a", 1);
  EXPECT_EQ(obj.dump(true), "{\n  \"a\": 1\n}");
}

TEST(JsonValueTest, KindMisuseThrows) {
  JsonValue arr = JsonValue::array();
  EXPECT_THROW(arr.set("k", 1), ContractViolation);
  JsonValue obj = JsonValue::object();
  EXPECT_THROW(obj.push_back(1), ContractViolation);
}

TEST(JsonValueTest, NonFiniteDoubleRejected) {
  const JsonValue v{std::numeric_limits<double>::infinity()};
  EXPECT_THROW(v.dump(), ContractViolation);
}

TEST(JsonSerializersTest, MetricsRoundTrip) {
  core::RunResult m;
  m.scheduler = "Para-CONV";
  m.iteration_time = TimeUnits{10};
  m.r_max = 3;
  m.prologue_time = TimeUnits{30};
  m.total_time = TimeUnits{1030};
  m.cached_iprs = 5;
  m.cache_bytes_used = 4_KiB;
  m.offchip_bytes_per_iteration = 8_KiB;
  m.pe_utilization = 0.75;
  const std::string dump = to_json(m).dump();
  EXPECT_NE(dump.find("\"scheduler\":\"Para-CONV\""), std::string::npos);
  EXPECT_NE(dump.find("\"r_max\":3"), std::string::npos);
  EXPECT_NE(dump.find("\"total_time\":1030"), std::string::npos);
  EXPECT_NE(dump.find("\"pe_utilization\":0.75"), std::string::npos);
}

TEST(JsonSerializersTest, ScheduleDumpCoversTasksAndIprs) {
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark("cat"));
  const pim::PimConfig config = pim::PimConfig::neurocube(16);
  const core::ParaConvResult r = core::ParaConv(config).schedule(g);
  const std::string dump = to_json(g, r.kernel).dump();
  EXPECT_NE(dump.find("\"graph\":\"cat\""), std::string::npos);
  EXPECT_NE(dump.find("cat_T1"), std::string::npos);
  // 9 tasks, 21 IPR entries.
  std::size_t retiming_fields = 0;
  for (std::size_t pos = dump.find("\"retiming\"");
       pos != std::string::npos; pos = dump.find("\"retiming\"", pos + 1)) {
    ++retiming_fields;
  }
  EXPECT_EQ(retiming_fields, 9U);
  std::size_t site_fields = 0;
  for (std::size_t pos = dump.find("\"site\""); pos != std::string::npos;
       pos = dump.find("\"site\"", pos + 1)) {
    ++site_fields;
  }
  EXPECT_EQ(site_fields, 21U);
}

TEST(JsonSerializersTest, MachineStatsDump) {
  pim::MachineStats stats;
  stats.makespan = TimeUnits{100};
  stats.tasks_executed = 50;
  stats.edram_bytes = 1_KiB;
  stats.pe_utilization = {0.5, 0.25};
  const std::string dump = to_json(stats).dump();
  EXPECT_NE(dump.find("\"makespan\":100"), std::string::npos);
  EXPECT_NE(dump.find("\"edram_bytes\":1024"), std::string::npos);
  EXPECT_NE(dump.find("\"pe_utilization\":[0.5,0.25]"), std::string::npos);
  EXPECT_NE(dump.find("\"total_pj\":"), std::string::npos);
}

}  // namespace
}  // namespace paraconv::report
