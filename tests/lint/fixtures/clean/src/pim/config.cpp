// Lint fixture: allocation-site token encoder/decoder pair.
#include "pim/config.hpp"

namespace paraconv::pim {

const char* to_string(AllocSite site) {
  switch (site) {
    case AllocSite::kCache:
      return "cache";
    case AllocSite::kEdram:
      return "edram";
  }
  return "unknown";
}

std::optional<AllocSite> alloc_site_from_string(const std::string& name) {
  if (name == "cache") return AllocSite::kCache;
  if (name == "edram") return AllocSite::kEdram;
  return std::nullopt;
}

}  // namespace paraconv::pim
