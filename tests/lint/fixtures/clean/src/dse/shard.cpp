// Lint fixture: the merge reader adopts checkpoint records, touching every
// contract column of a CellResult.
#include "dse/shard.hpp"

namespace paraconv::dse {

bool adopt_record(const CellResult& record, CellResult& cell) {
  if (record.index != cell.index) return false;
  cell.status = record.status;
  if (cell.status == CellStatus::kError) {
    if (record.error_code.empty()) return false;
    cell.error_code = record.error_code;
    cell.error_message = record.error_message;
  }
  return true;
}

}  // namespace paraconv::dse
