// Lint fixture: checkpoint codec touching the contract fields and tokens.
#include "dse/checkpoint.hpp"

namespace paraconv::dse {

std::string encode_cell_record(const CellResult& cell) {
  std::string out = "cell " + std::to_string(cell.index);
  out += to_string(cell.status);
  out += cell.error_code;
  out += cell.error_message;
  out += " bank ";
  out += std::to_string(cell.bank.banks);
  out += std::to_string(cell.bank.conflicts);
  out += std::to_string(cell.bank.stall_units);
  out += std::to_string(cell.bank.peak_occupancy);
  out += " batch ";
  out += std::to_string(cell.batch);
  return out;
}

bool decode_cell_record(const std::string& status, CellResult& cell) {
  if (status == "ok") {
    cell.status = CellStatus::kOk;
    return true;
  }
  if (status == "bank") {
    cell.bank.banks = 8;
    return true;
  }
  if (status == "batch") {
    cell.batch = 4;
    return true;
  }
  if (status == "error") {
    cell.status = CellStatus::kError;
    cell.error_code = "exception";
    cell.error_message = "fixture";
    return true;
  }
  return false;
}

}  // namespace paraconv::dse
