// Lint fixture: serve responses reuse the CellResult status schema — the
// writer sets every status column and maps both CellStatus tokens.
#include "serve/protocol.hpp"

namespace paraconv::serve {

void ok_response(JsonValue& response) {
  response.set("id", "r");
  response.set("op", "schedule");
  response.set("status", "ok");
}

void error_response(JsonValue& response) {
  response.set("status", "error");
  response.set("error_code", "bad-request");
  response.set("error_message", "detail");
}

bool status_from_token(const std::string& token) {
  return token == "ok" || token == "error";
}

}  // namespace paraconv::serve
