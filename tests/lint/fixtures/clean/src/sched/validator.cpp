// Lint fixture: to_string switch plus one instrumented counter site.
#include "sched/validator.hpp"

namespace paraconv::sched {

const char* to_string(DiagCode code) {
  switch (code) {
    case DiagCode::kPeOverlap:
      return "pe-overlap";
    case DiagCode::kDataNotReady:
      return "data-not-ready";
  }
  return "unknown";
}

void validate_something() {
  obs::count("validate.diagnostics", 1);
}

}  // namespace paraconv::sched
