// Lint fixture: every DiagCode enumerator asserted at least once.
#include "sched/validator.hpp"

namespace paraconv::sched {

void assert_codes() {
  (void)DiagCode::kPeOverlap;
  (void)DiagCode::kDataNotReady;
}

}  // namespace paraconv::sched
