// Seeded violation: sched (rank 4) reaching up into dse (rank 6).
#include "dse/frontier.hpp"

namespace paraconv::sched {}
