// Seeded violation: the serve error response dropped the error_code
// status column the CellResult schema requires.
#include "serve/protocol.hpp"

namespace paraconv::serve {

void ok_response(JsonValue& response) {
  response.set("id", "r");
  response.set("op", "schedule");
  response.set("status", "ok");
}

void error_response(JsonValue& response) {
  response.set("status", "error");
  response.set("error_message", "detail");
}

bool status_from_token(const std::string& token) {
  return token == "ok" || token == "error";
}

}  // namespace paraconv::serve
