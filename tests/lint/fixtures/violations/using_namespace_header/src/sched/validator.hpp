// Seeded violation: using-namespace at namespace scope in a header.
#pragma once

using namespace std;

namespace paraconv::sched {

enum class DiagCode {
  kPeOverlap,
  kDataNotReady,
};

const char* to_string(DiagCode code);

}  // namespace paraconv::sched
