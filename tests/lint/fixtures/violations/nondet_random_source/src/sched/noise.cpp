// Seeded violation: an ambient random source in library code.
#include "sched/noise.hpp"

namespace paraconv::sched {

int jitter() { return rand() % 7; }

}  // namespace paraconv::sched
