// Seeded violation: kDataNotReady is no longer asserted anywhere.
#include "sched/validator.hpp"

namespace paraconv::sched {

void assert_codes() {
  (void)DiagCode::kPeOverlap;
}

}  // namespace paraconv::sched
