// Seeded violation: a guarded field read without holding its mutex.
#include "sched/guarded.hpp"

namespace paraconv::sched {

struct ValidatorState {
  std::mutex mu_;
  int hits_{0};  // GUARDED-BY(mu_)
};

int peek_hits(ValidatorState& state) { return state.hits_; }

}  // namespace paraconv::sched
