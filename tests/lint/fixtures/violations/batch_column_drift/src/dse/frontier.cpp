// Seeded violation: the batch helper inserts a renamed column while the
// JSON writer and checkpoint codec still spell it "batch".
#include "dse/frontier.hpp"

namespace paraconv::dse {

const std::vector<std::string>& cell_header() {
  static const std::vector<std::string> kHeader{
      "index",      "benchmark",  "vertices",
      "edges",      "pe_count",   "cache_per_pe_bytes",
      "topology",   "packer",     "allocator",
      "status",     "error_code", "error_message"};
  return kHeader;
}

const std::vector<std::string>& banked_cell_header() {
  static const std::vector<std::string> kBankedHeader{
      "index",          "benchmark",        "vertices",
      "edges",          "pe_count",         "cache_per_pe_bytes",
      "topology",       "packer",           "allocator",
      "cost_model",     "banks",            "bank_policy",
      "bank_conflicts", "bank_stall_units", "bank_peak_occupancy",
      "status",         "error_code",       "error_message"};
  return kBankedHeader;
}

std::vector<std::string> header_with_batch(std::vector<std::string> header) {
  header.insert(header.begin() + 2, "n_images");
  return header;
}

bool batch_schema(const CellResult& cell) { return cell.batch != 1; }

void sweep_to_json(JsonValue& c) {
  c.set("index", 0);
  c.set("benchmark", "b");
  c.set("batch", 1);
  c.set("vertices", 1);
  c.set("edges", 1);
  c.set("pe_count", 16);
  c.set("cache_per_pe_bytes", 4096);
  c.set("topology", "mesh");
  c.set("packer", "topo");
  c.set("allocator", "dp");
  c.set("cost_model", "banked");
  c.set("banks", 8);
  c.set("bank_policy", "interleave");
  c.set("bank_conflicts", 0);
  c.set("bank_stall_units", 0);
  c.set("bank_peak_occupancy", 0);
  c.set("status", "ok");
  c.set("error_code", "");
  c.set("error_message", "");
}

}  // namespace paraconv::dse
