// Seeded violation: an atomic op with no explicit memory order.
#include "sched/counter.hpp"

namespace paraconv::sched {

std::atomic<int> g_count{0};

void bump() { g_count.fetch_add(1); }

}  // namespace paraconv::sched
