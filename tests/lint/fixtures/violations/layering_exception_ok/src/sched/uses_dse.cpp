// A grandfathered back-edge: listed, with a reason, in the exceptions file.
#include "dse/frontier.hpp"

namespace paraconv::sched {}
