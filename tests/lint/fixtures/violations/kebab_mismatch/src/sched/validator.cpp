// Seeded violation: rendering drifted from the enumerator-derived kebab.
#include "sched/validator.hpp"

namespace paraconv::sched {

const char* to_string(DiagCode code) {
  switch (code) {
    case DiagCode::kPeOverlap:
      return "pe-overlap";
    case DiagCode::kDataNotReady:
      return "data-unready";
  }
  return "unknown";
}

void validate_something() {
  obs::count("validate.diagnostics", 1);
}

}  // namespace paraconv::sched
