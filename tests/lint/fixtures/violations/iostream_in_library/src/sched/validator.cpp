// Seeded violation: <iostream> pulled into library code.
#include "sched/validator.hpp"

#include <iostream>

namespace paraconv::sched {

const char* to_string(DiagCode code) {
  switch (code) {
    case DiagCode::kPeOverlap:
      return "pe-overlap";
    case DiagCode::kDataNotReady:
      return "data-not-ready";
  }
  return "unknown";
}

void validate_something() {
  obs::count("validate.diagnostics", 1);
}

}  // namespace paraconv::sched
