// Lint fixture violation: the merge reader forgets the error_code column,
// so merged reports would silently drop the typed failure class.
#include "dse/shard.hpp"

namespace paraconv::dse {

bool adopt_record(const CellResult& record, CellResult& cell) {
  if (record.index != cell.index) return false;
  cell.status = record.status;
  if (cell.status == CellStatus::kError) {
    cell.error_message = record.error_message;
  }
  return true;
}

}  // namespace paraconv::dse
