// Seeded violation: kDataNotReady lost its to_string case.
#include "sched/validator.hpp"

namespace paraconv::sched {

const char* to_string(DiagCode code) {
  switch (code) {
    case DiagCode::kPeOverlap:
      return "pe-overlap";
  }
  return "unknown";
}

void validate_something() {
  obs::count("validate.diagnostics", 1);
}

}  // namespace paraconv::sched
