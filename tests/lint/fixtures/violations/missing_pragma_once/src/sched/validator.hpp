// Seeded violation: header without #pragma once.

namespace paraconv::sched {

enum class DiagCode {
  kPeOverlap,
  kDataNotReady,
};

const char* to_string(DiagCode code);

}  // namespace paraconv::sched
