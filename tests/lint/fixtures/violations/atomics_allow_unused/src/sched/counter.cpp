// Seeded violation: an atomic suppression covering a plain statement.
#include "sched/counter.hpp"

namespace paraconv::sched {

int plain_counter() {
  // ANALYZE-ALLOW(atomic): nothing atomic happens on the next line.
  int local = 0;
  return local;
}

}  // namespace paraconv::sched
