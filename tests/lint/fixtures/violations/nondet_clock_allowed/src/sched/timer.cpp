// Sanctioned wall-clock read: annotated and documented.
#include "sched/timer.hpp"

namespace paraconv::sched {

std::int64_t elapsed_ns() {
  // ANALYZE-ALLOW(nondet): fixture telemetry; never reaches result bytes.
  const auto t0 = std::chrono::steady_clock::now();
  return t0.time_since_epoch().count();
}

}  // namespace paraconv::sched
