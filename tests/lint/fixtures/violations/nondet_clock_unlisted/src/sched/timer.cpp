// Seeded violation: a wall-clock read with no ANALYZE-ALLOW annotation
// and no docs/BENCHMARKS.md exception row.
#include "sched/timer.hpp"

namespace paraconv::sched {

std::int64_t elapsed_ns() {
  const auto t0 = std::chrono::steady_clock::now();
  return t0.time_since_epoch().count();
}

}  // namespace paraconv::sched
