// Lint fixture: experiment CSV header sharing the identity prefix naming.
#include "report/csv.hpp"

namespace paraconv::report {

void write_experiment_csv() {
  const std::vector<std::string> header{
      "benchmark", "vertices", "edges", "pe_count", "para_total_time"};
  (void)header;
}

}  // namespace paraconv::report

namespace paraconv::report {

// Seeded violation: an address reinterpreted as an ordering key.
std::uintptr_t row_key(const void* row) {
  return reinterpret_cast<std::uintptr_t>(row);
}

}  // namespace paraconv::report
