// Seeded violation: the checkpoint codec stopped carrying the tagged bank
// segment, so banked counters silently vanish from resumed sweeps.
#include "dse/checkpoint.hpp"

namespace paraconv::dse {

std::string encode_cell_record(const CellResult& cell) {
  std::string out = "cell " + std::to_string(cell.index);
  out += to_string(cell.status);
  out += cell.error_code;
  out += cell.error_message;
  return out;
}

bool decode_cell_record(const std::string& status, CellResult& cell) {
  if (status == "ok") {
    cell.status = CellStatus::kOk;
    return true;
  }
  if (status == "error") {
    cell.status = CellStatus::kError;
    cell.error_code = "exception";
    cell.error_message = "fixture";
    return true;
  }
  return false;
}

}  // namespace paraconv::dse
