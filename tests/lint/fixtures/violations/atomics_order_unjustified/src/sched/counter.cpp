// Seeded violation: a relaxed RMW with no happens-before justification.
#include "sched/counter.hpp"

namespace paraconv::sched {

std::atomic<int> g_count{0};

void bump() { g_count.fetch_add(1, std::memory_order_relaxed); }

}  // namespace paraconv::sched
