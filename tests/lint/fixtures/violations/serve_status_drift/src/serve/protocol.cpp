// Seeded violation: the serve protocol renamed the "error" status token,
// drifting from to_string(CellStatus).
#include "serve/protocol.hpp"

namespace paraconv::serve {

void ok_response(JsonValue& response) {
  response.set("id", "r");
  response.set("op", "schedule");
  response.set("status", "ok");
}

void error_response(JsonValue& response) {
  response.set("status", "failed");
  response.set("error_code", "bad-request");
  response.set("error_message", "detail");
}

bool status_from_token(const std::string& token) {
  return token == "ok" || token == "failed";
}

}  // namespace paraconv::serve
