// Seeded violation: an unknown suppression category.
#include "sched/bad_allow.hpp"

namespace paraconv::sched {

// ANALYZE-ALLOW(bogus): not a category the grammar knows
int answer() { return 42; }

}  // namespace paraconv::sched
