// Seeded violation: a counter that never made it into the docs table.
#include "dse/sweep.hpp"

namespace paraconv::dse {

const char* to_string(CellStatus status) {
  switch (status) {
    case CellStatus::kOk:
      return "ok";
    case CellStatus::kError:
      return "error";
  }
  return "unknown";
}

void evaluate_cell() {
  const obs::ScopedSpan cell_span("cell", "fixture");
  obs::count("dse.cells", 1);
  obs::count("dse.cells.undocumented", 1);
}

}  // namespace paraconv::dse
