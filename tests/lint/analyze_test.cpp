// The analysis suite, analyzed: every seeded-violation overlay under
// fixtures/violations/ must trip exactly the check it seeds when the FULL
// pass suite runs (lint_test.cpp covers the lint-only configuration that
// paraconv_lint ships), the clean variants must stay clean, and the SARIF
// rendering must hold the 2.1.0 shape CI uploads.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>

#include "analyze.hpp"
#include "report/json_reader.hpp"

namespace paraconv::analyze {
namespace {

namespace fs = std::filesystem;

fs::path fixtures_dir() { return fs::path(PARACONV_LINT_FIXTURES_DIR); }

/// clean tree + optional overlay, materialized under a per-case temp dir.
fs::path make_tree(const std::string& case_name) {
  const fs::path root =
      fs::temp_directory_path() / ("paraconv_analyze_" + case_name);
  fs::remove_all(root);
  fs::copy(fixtures_dir() / "clean", root,
           fs::copy_options::recursive | fs::copy_options::overwrite_existing);
  const fs::path overlay = fixtures_dir() / "violations" / case_name;
  if (fs::exists(overlay)) {
    fs::copy(overlay, root,
             fs::copy_options::recursive |
                 fs::copy_options::overwrite_existing);
  }
  return root;
}

bool has_check(const Report& report, const std::string& check) {
  return std::any_of(
      report.findings.begin(), report.findings.end(),
      [&](const Finding& finding) { return finding.check == check; });
}

std::string render(const Report& report) {
  std::string out;
  for (const Finding& finding : report.findings) {
    out += to_string(finding) + "\n";
  }
  return out;
}

TEST(AnalyzeTest, CleanTreePassesEveryPass) {
  const Report report = run_analyze(make_tree("clean"));
  EXPECT_GT(report.files_scanned, 0);
  EXPECT_TRUE(report.findings.empty()) << render(report);
}

TEST(AnalyzeTest, PassCatalogIsStable) {
  std::vector<std::string> names;
  for (const PassInfo& pass : pass_catalog()) names.push_back(pass.name);
  EXPECT_EQ(names,
            (std::vector<std::string>{"lint", "nondet", "atomics",
                                      "layering"}));
}

TEST(AnalyzeTest, DisabledPassProducesNoFindings) {
  Options options;
  options.disabled = {"nondet"};
  const Report report =
      run_analyze(make_tree("nondet_random_source"), options);
  EXPECT_FALSE(has_check(report, "nondet-random-source")) << render(report);
}

struct ViolationCase {
  const char* overlay;
  const char* expected_check;
};

class AnalyzeViolationTest : public testing::TestWithParam<ViolationCase> {};

TEST_P(AnalyzeViolationTest, SeededViolationIsFlagged) {
  const Report report = run_analyze(make_tree(GetParam().overlay));
  EXPECT_TRUE(has_check(report, GetParam().expected_check))
      << "expected a [" << GetParam().expected_check
      << "] finding; got:\n" << render(report);
}

INSTANTIATE_TEST_SUITE_P(
    Seeded, AnalyzeViolationTest,
    testing::Values(
        ViolationCase{"nondet_unordered_emission",
                      "nondet-unordered-emission"},
        ViolationCase{"nondet_pointer_key", "nondet-pointer-key"},
        ViolationCase{"nondet_random_source", "nondet-random-source"},
        ViolationCase{"nondet_clock_unlisted", "nondet-wall-clock"},
        ViolationCase{"nondet_clock_doc_stale", "nondet-clock-doc-stale"},
        ViolationCase{"atomics_order_unjustified",
                      "atomics-order-unjustified"},
        ViolationCase{"atomics_bare_op", "atomics-bare-op"},
        ViolationCase{"atomics_guard_violation", "atomics-guard-violation"},
        ViolationCase{"atomics_allow_unused", "analyze-allow-unused"},
        ViolationCase{"layering_back_edge", "layering-back-edge"},
        ViolationCase{"layering_exception_stale", "layering-exception-stale"},
        ViolationCase{"layering_exception_malformed",
                      "layering-exception-malformed"},
        ViolationCase{"analyze_allow_malformed", "analyze-allow-malformed"}),
    [](const testing::TestParamInfo<ViolationCase>& param_info) {
      return param_info.param.overlay;
    });

// An annotated clock read listed in the BENCHMARKS.md exception table is
// sanctioned — both halves (annotation + doc row) are present here.
TEST(AnalyzeTest, DocumentedAnnotatedClockIsClean) {
  const Report report = run_analyze(make_tree("nondet_clock_allowed"));
  EXPECT_TRUE(report.findings.empty()) << render(report);
}

// A grandfathered back-edge with a matching exceptions entry is clean, and
// the entry counts as used (no staleness finding).
TEST(AnalyzeTest, GrandfatheredBackEdgeIsClean) {
  const Report report = run_analyze(make_tree("layering_exception_ok"));
  EXPECT_TRUE(report.findings.empty()) << render(report);
}

// ---- SARIF shape ----------------------------------------------------------

const report::JsonDoc* require_member(const report::JsonDoc* doc,
                                      const std::string& key) {
  EXPECT_NE(doc, nullptr);
  if (doc == nullptr) return nullptr;
  const report::JsonDoc* member = doc->find(key);
  EXPECT_NE(member, nullptr) << "missing SARIF member: " << key;
  return member;
}

TEST(AnalyzeSarifTest, FindingsRenderAsSarif210) {
  const Report report = run_analyze(make_tree("atomics_bare_op"));
  ASSERT_TRUE(has_check(report, "atomics-bare-op")) << render(report);

  report::JsonDoc doc;
  std::string error;
  ASSERT_TRUE(report::parse_json(to_sarif(report), &doc, &error)) << error;

  const report::JsonDoc* schema = require_member(&doc, "$schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_NE(schema->text.find("sarif-2.1.0"), std::string::npos);
  const report::JsonDoc* version = require_member(&doc, "version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->text, "2.1.0");

  const report::JsonDoc* runs = require_member(&doc, "runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->items.size(), 1U);
  const report::JsonDoc& run = runs->items[0];

  const report::JsonDoc* tool = require_member(&run, "tool");
  const report::JsonDoc* driver = require_member(tool, "driver");
  const report::JsonDoc* name = require_member(driver, "name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->text, "paraconv_analyze");

  // One rule per distinct check id, and every result's ruleId resolves.
  const report::JsonDoc* rules = require_member(driver, "rules");
  ASSERT_NE(rules, nullptr);
  std::set<std::string> rule_ids;
  for (const report::JsonDoc& rule : rules->items) {
    const report::JsonDoc* id = require_member(&rule, "id");
    ASSERT_NE(id, nullptr);
    EXPECT_TRUE(rule_ids.insert(id->text).second)
        << "duplicate rule id: " << id->text;
  }
  EXPECT_EQ(rule_ids.count("atomics-bare-op"), 1U);

  const report::JsonDoc* results = require_member(&run, "results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->items.size(), report.findings.size());
  for (const report::JsonDoc& result : results->items) {
    const report::JsonDoc* rule_id = require_member(&result, "ruleId");
    ASSERT_NE(rule_id, nullptr);
    EXPECT_EQ(rule_ids.count(rule_id->text), 1U)
        << "result ruleId not in driver.rules: " << rule_id->text;
    const report::JsonDoc* level = require_member(&result, "level");
    ASSERT_NE(level, nullptr);
    EXPECT_EQ(level->text, "error");
    const report::JsonDoc* message = require_member(&result, "message");
    const report::JsonDoc* text = require_member(message, "text");
    ASSERT_NE(text, nullptr);
    EXPECT_FALSE(text->text.empty());
    const report::JsonDoc* locations = require_member(&result, "locations");
    ASSERT_NE(locations, nullptr);
    ASSERT_EQ(locations->items.size(), 1U);
    const report::JsonDoc* physical =
        require_member(&locations->items[0], "physicalLocation");
    const report::JsonDoc* artifact =
        require_member(physical, "artifactLocation");
    const report::JsonDoc* uri = require_member(artifact, "uri");
    ASSERT_NE(uri, nullptr);
    EXPECT_FALSE(uri->text.empty());
    const report::JsonDoc* region = require_member(physical, "region");
    const report::JsonDoc* start_line = require_member(region, "startLine");
    ASSERT_NE(start_line, nullptr);
    EXPECT_GE(start_line->number, 1.0);
  }
}

TEST(AnalyzeSarifTest, CleanReportRendersEmptyRun) {
  const Report report = run_analyze(make_tree("clean"));
  ASSERT_TRUE(report.findings.empty()) << render(report);

  report::JsonDoc doc;
  std::string error;
  ASSERT_TRUE(report::parse_json(to_sarif(report), &doc, &error)) << error;
  const report::JsonDoc* runs = require_member(&doc, "runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->items.size(), 1U);
  const report::JsonDoc* results = require_member(&runs->items[0], "results");
  ASSERT_NE(results, nullptr);
  EXPECT_TRUE(results->items.empty());
}

}  // namespace
}  // namespace paraconv::analyze
