// The lint pass, linted: a clean mini-repo fixture must produce zero
// findings, and every seeded-violation overlay must trip exactly the check
// it seeds. Overlays live as real files under fixtures/violations/<case>/
// mirroring the repo layout; each test copies the clean tree into a temp
// dir, drops the overlay on top, and runs the same lint-only configuration
// the `paraconv_lint` binary (and the `lint` ctest) uses — run_analyze with
// the three analysis passes disabled.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>

#include "analyze.hpp"

namespace paraconv::analyze {
namespace {

namespace fs = std::filesystem;

fs::path fixtures_dir() { return fs::path(PARACONV_LINT_FIXTURES_DIR); }

/// clean tree + optional overlay, materialized under a per-case temp dir.
fs::path make_tree(const std::string& case_name) {
  const fs::path root =
      fs::temp_directory_path() / ("paraconv_lint_" + case_name);
  fs::remove_all(root);
  fs::copy(fixtures_dir() / "clean", root,
           fs::copy_options::recursive | fs::copy_options::overwrite_existing);
  const fs::path overlay = fixtures_dir() / "violations" / case_name;
  if (fs::exists(overlay)) {
    fs::copy(overlay, root,
             fs::copy_options::recursive |
                 fs::copy_options::overwrite_existing);
  }
  return root;
}

/// What `paraconv_lint` runs: the lint pass alone.
Report run_lint(const fs::path& root) {
  Options options;
  options.disabled = {"nondet", "atomics", "layering"};
  return run_analyze(root, options);
}

bool has_check(const Report& report, const std::string& check) {
  return std::any_of(
      report.findings.begin(), report.findings.end(),
      [&](const Finding& finding) { return finding.check == check; });
}

std::string render(const Report& report) {
  std::string out;
  for (const Finding& finding : report.findings) {
    out += to_string(finding) + "\n";
  }
  return out;
}

TEST(LintTest, CleanTreePasses) {
  const Report report = run_lint(make_tree("clean"));
  EXPECT_GT(report.files_scanned, 0);
  EXPECT_TRUE(report.findings.empty()) << render(report);
}

TEST(LintTest, MissingRootReportsMissingInputs) {
  const Report report = run_lint(fs::temp_directory_path() /
                                 "paraconv_lint_does_not_exist");
  EXPECT_EQ(report.files_scanned, 0);
  EXPECT_TRUE(has_check(report, "missing-input")) << render(report);
}

struct ViolationCase {
  const char* overlay;
  const char* expected_check;
};

class LintViolationTest : public testing::TestWithParam<ViolationCase> {};

TEST_P(LintViolationTest, SeededViolationIsFlagged) {
  const Report report = run_lint(make_tree(GetParam().overlay));
  EXPECT_TRUE(has_check(report, GetParam().expected_check))
      << "expected a [" << GetParam().expected_check
      << "] finding; got:\n" << render(report);
}

INSTANTIATE_TEST_SUITE_P(
    Seeded, LintViolationTest,
    testing::Values(
        ViolationCase{"missing_to_string", "diag-to-string-missing"},
        ViolationCase{"kebab_mismatch", "diag-kebab-mismatch"},
        ViolationCase{"stale_doc_code", "diag-doc-stale"},
        ViolationCase{"untested_diag", "diag-untested"},
        ViolationCase{"undocumented_counter", "obs-undocumented"},
        ViolationCase{"bad_counter_style", "obs-name-style"},
        ViolationCase{"mismatched_csv_column", "schema-csv-identity"},
        ViolationCase{"missing_json_key", "schema-json-missing"},
        ViolationCase{"status_token_drift", "schema-status-token"},
        ViolationCase{"serve_missing_field", "schema-serve-missing"},
        ViolationCase{"serve_status_drift", "schema-serve-status-token"},
        ViolationCase{"merge_missing_field", "schema-merge-field"},
        ViolationCase{"bank_column_drift", "schema-bank-columns"},
        ViolationCase{"bank_checkpoint_drift", "schema-bank-checkpoint"},
        ViolationCase{"batch_column_drift", "schema-batch-columns"},
        ViolationCase{"alloc_site_token_case", "schema-alloc-site-token"},
        ViolationCase{"using_namespace_header", "using-namespace-header"},
        ViolationCase{"missing_pragma_once", "pragma-once"},
        ViolationCase{"bare_nolint", "nolint-policy"},
        ViolationCase{"iostream_in_library", "iostream-in-library"},
        ViolationCase{"xref_missing_file", "xref-file-missing"},
        ViolationCase{"xref_missing_symbol", "xref-symbol-missing"}),
    [](const testing::TestParamInfo<ViolationCase>& param_info) {
      return param_info.param.overlay;
    });

// Deleting the docs table entirely must fail too (a vacuous pass when the
// section heading is renamed would quietly disable three checks).
TEST(LintTest, MissingDocSectionsAreFindings) {
  const fs::path root = make_tree("no_doc_sections");
  fs::remove(root / "docs" / "USAGE.md");
  std::ofstream(root / "docs" / "USAGE.md") << "# empty\n";
  const Report report = run_lint(root);
  EXPECT_TRUE(has_check(report, "diag-doc-section-missing")) << render(report);
  EXPECT_TRUE(has_check(report, "obs-doc-section-missing")) << render(report);
}

}  // namespace
}  // namespace paraconv::analyze
