#include "graph/generator.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/dot.hpp"

namespace paraconv::graph {
namespace {

struct SizeCase {
  std::size_t vertices;
  std::size_t edges;
};

class GeneratorSizeTest : public testing::TestWithParam<SizeCase> {};

TEST_P(GeneratorSizeTest, HitsExactCounts) {
  GeneratorConfig config;
  config.vertices = GetParam().vertices;
  config.edges = GetParam().edges;
  config.seed = 11;
  const TaskGraph g = generate_layered_dag(config);
  EXPECT_EQ(g.node_count(), GetParam().vertices);
  EXPECT_EQ(g.edge_count(), GetParam().edges);
}

TEST_P(GeneratorSizeTest, IsAcyclicWithTopologicalIds) {
  GeneratorConfig config;
  config.vertices = GetParam().vertices;
  config.edges = GetParam().edges;
  config.seed = 22;
  const TaskGraph g = generate_layered_dag(config);
  EXPECT_TRUE(is_acyclic(g));
  for (const EdgeId e : g.edges()) {
    EXPECT_LT(g.ipr(e).src.value, g.ipr(e).dst.value);
  }
}

TEST_P(GeneratorSizeTest, EveryNonSourceHasProducer) {
  GeneratorConfig config;
  config.vertices = GetParam().vertices;
  config.edges = GetParam().edges;
  config.seed = 33;
  const TaskGraph g = generate_layered_dag(config);
  // The backbone guarantees at most the first layer lacks in-edges; at
  // minimum the graph has a single connected sweep of producers.
  std::size_t source_count = sources(g).size();
  EXPECT_GE(source_count, 1U);
  EXPECT_LE(source_count, g.node_count() / 2 + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GeneratorSizeTest,
    testing::Values(SizeCase{2, 1}, SizeCase{9, 21}, SizeCase{13, 28},
                    SizeCase{21, 51}, SizeCase{46, 121}, SizeCase{100, 400},
                    SizeCase{191, 506}, SizeCase{546, 1449},
                    SizeCase{64, 64 * 63 / 2}));  // fully saturated DAG

TEST(GeneratorTest, DeterministicForSameSeed) {
  GeneratorConfig config;
  config.vertices = 50;
  config.edges = 130;
  config.seed = 77;
  const TaskGraph a = generate_layered_dag(config);
  const TaskGraph b = generate_layered_dag(config);
  EXPECT_EQ(to_dot(a), to_dot(b));
}

TEST(GeneratorTest, DifferentSeedsProduceDifferentGraphs) {
  GeneratorConfig a;
  a.vertices = 50;
  a.edges = 130;
  a.seed = 1;
  GeneratorConfig b = a;
  b.seed = 2;
  EXPECT_NE(to_dot(generate_layered_dag(a)), to_dot(generate_layered_dag(b)));
}

TEST(GeneratorTest, ExecTimesWithinRange) {
  GeneratorConfig config;
  config.vertices = 80;
  config.edges = 200;
  config.seed = 5;
  config.min_exec = 3;
  config.max_exec = 9;
  config.pooling_fraction = 0.0;
  const TaskGraph g = generate_layered_dag(config);
  for (const NodeId v : g.nodes()) {
    EXPECT_GE(g.task(v).exec_time.value, 3);
    EXPECT_LE(g.task(v).exec_time.value, 9);
  }
}

TEST(GeneratorTest, IprSizesWithinRangeAndLineAligned) {
  GeneratorConfig config;
  config.vertices = 60;
  config.edges = 150;
  config.seed = 6;
  config.min_ipr_bytes = 1024;
  config.max_ipr_bytes = 8192;
  const TaskGraph g = generate_layered_dag(config);
  for (const EdgeId e : g.edges()) {
    EXPECT_GE(g.ipr(e).size.value, 64);
    EXPECT_LE(g.ipr(e).size.value, 8192);
    EXPECT_EQ(g.ipr(e).size.value % 64, 0);
  }
}

TEST(GeneratorTest, PoolingFractionRespectedAtExtremes) {
  GeneratorConfig config;
  config.vertices = 40;
  config.edges = 90;
  config.seed = 8;
  config.pooling_fraction = 0.0;
  const TaskGraph all_conv = generate_layered_dag(config);
  for (const NodeId v : all_conv.nodes()) {
    EXPECT_EQ(all_conv.task(v).kind, TaskKind::kConvolution);
  }
  config.pooling_fraction = 1.0;
  const TaskGraph all_pool = generate_layered_dag(config);
  for (const NodeId v : all_pool.nodes()) {
    EXPECT_EQ(all_pool.task(v).kind, TaskKind::kPooling);
  }
}

TEST(GeneratorTest, RejectsInfeasibleConfigs) {
  GeneratorConfig config;
  config.vertices = 1;
  config.edges = 0;
  EXPECT_THROW(generate_layered_dag(config), ContractViolation);

  config.vertices = 10;
  config.edges = 5;  // fewer than vertices-1
  EXPECT_THROW(generate_layered_dag(config), ContractViolation);

  config.edges = 46;  // above n*(n-1)/2 = 45
  EXPECT_THROW(generate_layered_dag(config), ContractViolation);

  config.edges = 20;
  config.min_exec = 0;
  EXPECT_THROW(generate_layered_dag(config), ContractViolation);

  config.min_exec = 1;
  config.min_ipr_bytes = 0;
  EXPECT_THROW(generate_layered_dag(config), ContractViolation);
}

TEST(GeneratorTest, NamePropagatesToGraphAndTasks) {
  GeneratorConfig config;
  config.name = "myapp";
  config.vertices = 10;
  config.edges = 20;
  const TaskGraph g = generate_layered_dag(config);
  EXPECT_EQ(g.name(), "myapp");
  EXPECT_EQ(g.task(NodeId{0}).name.rfind("myapp_T", 0), 0U);
}

}  // namespace
}  // namespace paraconv::graph
