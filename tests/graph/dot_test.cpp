#include "graph/dot.hpp"

#include <gtest/gtest.h>

namespace paraconv::graph {
namespace {

TEST(DotTest, ContainsNodesAndEdges) {
  TaskGraph g("demo");
  const NodeId a =
      g.add_task(Task{"convA", TaskKind::kConvolution, TimeUnits{2}});
  const NodeId b = g.add_task(Task{"poolB", TaskKind::kPooling, TimeUnits{1}});
  g.add_ipr(a, b, 2_KiB);

  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph \"demo\""), std::string::npos);
  EXPECT_NE(dot.find("convA"), std::string::npos);
  EXPECT_NE(dot.find("poolB"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("2.0 KiB"), std::string::npos);
  EXPECT_NE(dot.find("c=2"), std::string::npos);
}

TEST(DotTest, EdgeCountMatches) {
  TaskGraph g("demo");
  const NodeId a = g.add_task(Task{"A", TaskKind::kConvolution, TimeUnits{1}});
  const NodeId b = g.add_task(Task{"B", TaskKind::kConvolution, TimeUnits{1}});
  const NodeId c = g.add_task(Task{"C", TaskKind::kConvolution, TimeUnits{1}});
  g.add_ipr(a, b, 1_KiB);
  g.add_ipr(a, c, 1_KiB);
  g.add_ipr(b, c, 1_KiB);
  const std::string dot = to_dot(g);
  std::size_t arrows = 0;
  for (std::size_t pos = dot.find(" -> "); pos != std::string::npos;
       pos = dot.find(" -> ", pos + 1)) {
    ++arrows;
  }
  EXPECT_EQ(arrows, 3U);
}

}  // namespace
}  // namespace paraconv::graph
