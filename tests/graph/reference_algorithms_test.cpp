// Cross-checks of the graph algorithms against brute-force references on
// small random DAGs (exhaustive path enumeration is exponential, so the
// instances stay tiny while the seeds vary).
#include <gtest/gtest.h>

#include <functional>

#include "common/rng.hpp"
#include "graph/algorithms.hpp"
#include "graph/generator.hpp"

namespace paraconv::graph {
namespace {

/// Longest exec-time path ending criteria via explicit DFS enumeration.
TimeUnits brute_force_critical_path(const TaskGraph& g) {
  TimeUnits best{0};
  std::function<void(NodeId, TimeUnits)> dfs = [&](NodeId v, TimeUnits acc) {
    const TimeUnits total = acc + g.task(v).exec_time;
    best = std::max(best, total);
    for (const EdgeId e : g.out_edges(v)) dfs(g.ipr(e).dst, total);
  };
  for (const NodeId v : g.nodes()) dfs(v, TimeUnits{0});
  return best;
}

int brute_force_longest_weighted(const TaskGraph& g, NodeId from,
                                 const std::vector<int>& weight) {
  int best = 0;
  std::function<void(NodeId, int)> dfs = [&](NodeId v, int acc) {
    best = std::max(best, acc);
    for (const EdgeId e : g.out_edges(v)) {
      dfs(g.ipr(e).dst, acc + weight[e.value]);
    }
  };
  dfs(from, 0);
  return best;
}

TaskGraph small_random(std::uint64_t seed) {
  Rng rng(seed);
  GeneratorConfig config;
  config.vertices = static_cast<std::size_t>(rng.uniform_int(3, 10));
  config.edges = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(config.vertices - 1),
      static_cast<std::int64_t>(config.vertices * (config.vertices - 1) / 2)));
  config.seed = seed * 1337;
  return generate_layered_dag(config);
}

class ReferenceAlgorithmsTest : public testing::TestWithParam<std::uint64_t> {
};

TEST_P(ReferenceAlgorithmsTest, CriticalPathMatchesEnumeration) {
  const TaskGraph g = small_random(GetParam());
  EXPECT_EQ(critical_path_length(g), brute_force_critical_path(g));
}

TEST_P(ReferenceAlgorithmsTest, WeightedLongestPathMatchesEnumeration) {
  const TaskGraph g = small_random(GetParam());
  Rng rng(GetParam() ^ 0xABCD);
  std::vector<int> weight(g.edge_count());
  for (int& w : weight) w = static_cast<int>(rng.uniform_int(0, 3));
  const auto value = longest_path_by_edge_weight(g, weight);
  for (const NodeId v : g.nodes()) {
    EXPECT_EQ(value[v.value], brute_force_longest_weighted(g, v, weight));
  }
}

TEST_P(ReferenceAlgorithmsTest, UpwardRankIsExecTimeLongestPathFromNode) {
  const TaskGraph g = small_random(GetParam());
  const auto rank = upward_rank(g);
  for (const NodeId v : g.nodes()) {
    // Rank(v) equals the brute-force longest exec-time path starting at v.
    TimeUnits best{0};
    std::function<void(NodeId, TimeUnits)> dfs = [&](NodeId u,
                                                     TimeUnits acc) {
      const TimeUnits total = acc + g.task(u).exec_time;
      best = std::max(best, total);
      for (const EdgeId e : g.out_edges(u)) dfs(g.ipr(e).dst, total);
    };
    dfs(v, TimeUnits{0});
    EXPECT_EQ(rank[v.value], best);
  }
}

TEST_P(ReferenceAlgorithmsTest, TopologicalOrderIsAPermutation) {
  const TaskGraph g = small_random(GetParam());
  const auto order = topological_order(g);
  ASSERT_TRUE(order.has_value());
  std::vector<bool> seen(g.node_count(), false);
  for (const NodeId v : *order) {
    EXPECT_FALSE(seen[v.value]);
    seen[v.value] = true;
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReferenceAlgorithmsTest,
                         testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace paraconv::graph
