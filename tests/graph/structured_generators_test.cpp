#include <gtest/gtest.h>

#include "core/para_conv.hpp"
#include "graph/algorithms.hpp"
#include "graph/generator.hpp"
#include "sched/validator.hpp"

namespace paraconv::graph {
namespace {

GeneratorConfig cfg(std::uint64_t seed) {
  GeneratorConfig c;
  c.name = "structured";
  c.seed = seed;
  return c;
}

TEST(ForkJoinTest, ShapeCounts) {
  // Per stage: fork + branches*length + join nodes; edges: fork->branch
  // heads via chain of length L per branch (L edges each) + branches joins
  // + inter-stage link.
  const int stages = 3;
  const int branches = 4;
  const int length = 2;
  const TaskGraph g = generate_fork_join(cfg(1), stages, branches, length);
  EXPECT_EQ(g.node_count(),
            static_cast<std::size_t>(stages * (2 + branches * length)));
  EXPECT_EQ(g.edge_count(),
            static_cast<std::size_t>(stages * (branches * (length + 1)) +
                                     (stages - 1)));
  EXPECT_TRUE(is_acyclic(g));
  EXPECT_EQ(sources(g).size(), 1U);
  EXPECT_EQ(sinks(g).size(), 1U);
}

TEST(ForkJoinTest, BranchWidthVisibleInDegrees) {
  const TaskGraph g = generate_fork_join(cfg(2), 1, 6, 1);
  const DegreeStats stats = degree_stats(g);
  EXPECT_EQ(stats.max_out, 6U);  // fork fans out to every branch
  EXPECT_EQ(stats.max_in, 6U);   // join collects every branch
}

TEST(DiamondChainTest, ShapeCounts) {
  const int stages = 4;
  const int width = 5;
  const TaskGraph g = generate_diamond_chain(cfg(3), stages, width);
  EXPECT_EQ(g.node_count(), static_cast<std::size_t>(1 + stages * (width + 1)));
  EXPECT_EQ(g.edge_count(), static_cast<std::size_t>(stages * 2 * width));
  EXPECT_TRUE(is_acyclic(g));
  EXPECT_EQ(sources(g).size(), 1U);
  EXPECT_EQ(sinks(g).size(), 1U);
}

TEST(StructuredGeneratorsTest, DeterministicBySeed) {
  const TaskGraph a = generate_fork_join(cfg(7), 2, 3, 2);
  const TaskGraph b = generate_fork_join(cfg(7), 2, 3, 2);
  ASSERT_EQ(a.node_count(), b.node_count());
  for (const NodeId v : a.nodes()) {
    EXPECT_EQ(a.task(v).exec_time, b.task(v).exec_time);
  }
  const TaskGraph c = generate_fork_join(cfg(8), 2, 3, 2);
  bool any_diff = false;
  for (const NodeId v : a.nodes()) {
    if (a.task(v).exec_time != c.task(v).exec_time) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(StructuredGeneratorsTest, RejectInvalidShapes) {
  EXPECT_THROW(generate_fork_join(cfg(1), 0, 1, 1), ContractViolation);
  EXPECT_THROW(generate_fork_join(cfg(1), 1, 0, 1), ContractViolation);
  EXPECT_THROW(generate_diamond_chain(cfg(1), 1, 0), ContractViolation);
  GeneratorConfig bad = cfg(1);
  bad.min_exec = 0;
  EXPECT_THROW(generate_fork_join(bad, 1, 1, 1), ContractViolation);
}

TEST(StructuredGeneratorsTest, ScheduleEndToEnd) {
  const pim::PimConfig config = pim::PimConfig::neurocube(16);
  for (const TaskGraph& g :
       {generate_fork_join(cfg(11), 4, 4, 3),
        generate_diamond_chain(cfg(12), 6, 8)}) {
    const core::ParaConvResult r = core::ParaConv(config).schedule(g);
    EXPECT_TRUE(sched::is_valid_kernel_schedule(g, r.kernel, config,
                                                config.total_cache_bytes()))
        << g.name();
    // Fork-join and diamond graphs are chain-synchronized: pipelining must
    // still beat the non-retimed critical path per iteration.
    EXPECT_LT(r.kernel.period, critical_path_length(g)) << g.name();
  }
}

}  // namespace
}  // namespace paraconv::graph
