#include "graph/unfold.hpp"

#include <gtest/gtest.h>

#include "core/para_conv.hpp"
#include "graph/algorithms.hpp"
#include "graph/paper_benchmarks.hpp"
#include "sched/validator.hpp"

namespace paraconv::graph {
namespace {

TEST(UnfoldTest, CopiesAreDisjointAndComplete) {
  const TaskGraph g = motivational_example();
  const TaskGraph u = unfold(g, 3);
  EXPECT_EQ(u.node_count(), 3 * g.node_count());
  EXPECT_EQ(u.edge_count(), 3 * g.edge_count());
  EXPECT_TRUE(is_acyclic(u));
  EXPECT_EQ(u.total_work().value, 3 * g.total_work().value);
  EXPECT_EQ(u.name(), "motivational_x3");

  // No edge crosses copies.
  const auto n = static_cast<std::uint32_t>(g.node_count());
  for (const EdgeId e : u.edges()) {
    EXPECT_EQ(u.ipr(e).src.value / n, u.ipr(e).dst.value / n);
  }
}

TEST(UnfoldTest, FactorOneIsIdentityUpToName) {
  const TaskGraph g = motivational_example();
  const TaskGraph u = unfold(g, 1);
  EXPECT_EQ(u.node_count(), g.node_count());
  EXPECT_EQ(u.edge_count(), g.edge_count());
  EXPECT_EQ(u.task(NodeId{0}).name, "T1@0");
}

TEST(UnfoldTest, OriginMappingRoundTrips) {
  const TaskGraph g = motivational_example();
  const TaskGraph u = unfold(g, 4);
  for (const NodeId v : u.nodes()) {
    const UnfoldedId id = unfold_origin(g, v);
    EXPECT_GE(id.copy, 0);
    EXPECT_LT(id.copy, 4);
    EXPECT_EQ(u.task(v).exec_time, g.task(id.original).exec_time);
    EXPECT_EQ(u.task(v).name, g.task(id.original).name + "@" +
                                  std::to_string(id.copy));
  }
}

TEST(UnfoldTest, RejectsInvalidFactor) {
  const TaskGraph g = motivational_example();
  EXPECT_THROW(unfold(g, 0), ContractViolation);
}

class UnfoldThroughputTest : public testing::TestWithParam<const char*> {};

TEST(UnfoldTest, WeightsCarryOver) {
  TaskGraph g("w");
  Task t{"a", TaskKind::kConvolution, TimeUnits{1}};
  t.weights = 3_KiB;
  g.add_task(std::move(t));
  g.add_task(Task{"b", TaskKind::kConvolution, TimeUnits{1}});
  g.add_ipr(NodeId{0}, NodeId{1}, 1_KiB);
  const TaskGraph u = unfold(g, 2);
  EXPECT_EQ(u.task(NodeId{2}).weights, 3_KiB);
}

TEST_P(UnfoldThroughputTest, SuperIterationImprovesOrMatchesThroughput) {
  // The per-input period of the unfolded schedule (super-period / factor)
  // is bounded by the single-iteration period plus amortized packing slack.
  const TaskGraph g =
      build_paper_benchmark(paper_benchmark(GetParam()));
  const pim::PimConfig config = pim::PimConfig::neurocube(32);

  const core::ParaConvResult single = core::ParaConv(config).schedule(g);
  for (const int factor : {2, 4}) {
    const TaskGraph u = unfold(g, factor);
    const core::ParaConvResult super = core::ParaConv(config).schedule(u);
    EXPECT_TRUE(sched::is_valid_kernel_schedule(
        u, super.kernel, config, config.total_cache_bytes()));
    const double per_input =
        static_cast<double>(super.kernel.period.value) / factor;
    EXPECT_LE(per_input,
              static_cast<double>(single.kernel.period.value) +
                  static_cast<double>(g.max_exec_time().value))
        << "factor " << factor;
  }
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, UnfoldThroughputTest,
                         testing::Values("cat", "flower", "character-1"),
                         [](const testing::TestParamInfo<const char*>& pi) {
                           std::string name = pi.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace paraconv::graph
