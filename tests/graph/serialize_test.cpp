#include "graph/serialize.hpp"

#include <gtest/gtest.h>

#include "graph/dot.hpp"
#include "graph/paper_benchmarks.hpp"

namespace paraconv::graph {
namespace {

TEST(SerializeTest, RoundTripsHandBuiltGraph) {
  TaskGraph g("demo");
  const NodeId a = g.add_task(Task{"A", TaskKind::kConvolution, TimeUnits{2}});
  const NodeId b = g.add_task(Task{"B", TaskKind::kPooling, TimeUnits{1}});
  const NodeId c =
      g.add_task(Task{"C", TaskKind::kFullyConnected, TimeUnits{3}});
  g.add_ipr(a, b, 2_KiB);
  g.add_ipr(b, c, 4_KiB);

  const TaskGraph back = read_graph_string(write_graph_string(g));
  EXPECT_EQ(back.name(), "demo");
  ASSERT_EQ(back.node_count(), 3U);
  ASSERT_EQ(back.edge_count(), 2U);
  EXPECT_EQ(back.task(NodeId{1}).kind, TaskKind::kPooling);
  EXPECT_EQ(back.task(NodeId{2}).exec_time.value, 3);
  EXPECT_EQ(back.ipr(EdgeId{1}).size, 4_KiB);
  EXPECT_EQ(to_dot(back), to_dot(g));
}

TEST(SerializeTest, RoundTripsAllPaperBenchmarks) {
  for (const PaperBenchmark& bench : paper_benchmarks()) {
    const TaskGraph g = build_paper_benchmark(bench);
    const TaskGraph back = read_graph_string(write_graph_string(g));
    EXPECT_EQ(to_dot(back), to_dot(g)) << bench.name;
  }
}

TEST(SerializeTest, WeightFootprintsRoundTrip) {
  TaskGraph g("weights");
  Task heavy{"conv", TaskKind::kConvolution, TimeUnits{4}};
  heavy.weights = 12_KiB;
  const NodeId a = g.add_task(std::move(heavy));
  const NodeId b = g.add_task(Task{"pool", TaskKind::kPooling, TimeUnits{1}});
  g.add_ipr(a, b, 2_KiB);

  const std::string text = write_graph_string(g);
  EXPECT_NE(text.find("task conv conv 4 12288"), std::string::npos);
  EXPECT_NE(text.find("task pool pool 1\n"), std::string::npos);

  const TaskGraph back = read_graph_string(text);
  EXPECT_EQ(back.task(NodeId{0}).weights, 12_KiB);
  EXPECT_EQ(back.task(NodeId{1}).weights, Bytes{0});
}

TEST(SerializeTest, CommentsAndBlankLinesIgnored) {
  const TaskGraph g = read_graph_string(
      "paraconv-graph 1\n"
      "# a comment\n"
      "\n"
      "name mini\n"
      "task t0 conv 1\n"
      "task t1 conv 2\n"
      "# another comment\n"
      "ipr 0 1 1024\n");
  EXPECT_EQ(g.name(), "mini");
  EXPECT_EQ(g.node_count(), 2U);
  EXPECT_EQ(g.edge_count(), 1U);
}

TEST(SerializeTest, RejectsMissingHeader) {
  EXPECT_THROW(read_graph_string("name x\n"), ContractViolation);
  EXPECT_THROW(read_graph_string(""), ContractViolation);
}

TEST(SerializeTest, RejectsMalformedRecords) {
  const std::string header = "paraconv-graph 1\ntask t0 conv 1\n";
  EXPECT_THROW(read_graph_string(header + "task missing-kind\n"),
               ContractViolation);
  EXPECT_THROW(read_graph_string(header + "task t1 alien 1\n"),
               ContractViolation);
  EXPECT_THROW(read_graph_string(header + "task t1 conv notanint\n"),
               ContractViolation);
  EXPECT_THROW(read_graph_string(header + "frobnicate 1 2\n"),
               ContractViolation);
}

TEST(SerializeTest, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW(read_graph_string("paraconv-graph 1\n"
                                 "task t0 conv 1\n"
                                 "task t1 conv 1\n"
                                 "ipr 0 5 1024\n"),
               ContractViolation);
}

TEST(SerializeTest, ErrorMessagesCarryLineNumbers) {
  try {
    read_graph_string("paraconv-graph 1\ntask t0 conv 1\nipr 0 0 64\n");
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    // Self-loop rejected by the graph; parse errors elsewhere carry the
    // offending line number.
    SUCCEED();
  }
  try {
    read_graph_string("paraconv-graph 1\ntask t0 conv nope\n");
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace paraconv::graph
