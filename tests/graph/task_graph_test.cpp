#include "graph/task_graph.hpp"

#include <gtest/gtest.h>

namespace paraconv::graph {
namespace {

Task conv(const std::string& name, std::int64_t exec = 1) {
  return Task{name, TaskKind::kConvolution, TimeUnits{exec}};
}

TEST(TaskGraphTest, AddAndQueryTasks) {
  TaskGraph g("t");
  const NodeId a = g.add_task(conv("A", 2));
  const NodeId b = g.add_task(conv("B", 3));
  EXPECT_EQ(g.node_count(), 2U);
  EXPECT_EQ(g.task(a).name, "A");
  EXPECT_EQ(g.task(b).exec_time.value, 3);
  EXPECT_EQ(g.name(), "t");
}

TEST(TaskGraphTest, AddAndQueryEdges) {
  TaskGraph g;
  const NodeId a = g.add_task(conv("A"));
  const NodeId b = g.add_task(conv("B"));
  const EdgeId e = g.add_ipr(a, b, 4_KiB);
  EXPECT_EQ(g.edge_count(), 1U);
  EXPECT_EQ(g.ipr(e).src, a);
  EXPECT_EQ(g.ipr(e).dst, b);
  EXPECT_EQ(g.ipr(e).size, 4_KiB);
  ASSERT_EQ(g.out_edges(a).size(), 1U);
  EXPECT_EQ(g.out_edges(a)[0], e);
  ASSERT_EQ(g.in_edges(b).size(), 1U);
  EXPECT_EQ(g.in_edges(b)[0], e);
  EXPECT_TRUE(g.out_edges(b).empty());
  EXPECT_TRUE(g.in_edges(a).empty());
}

TEST(TaskGraphTest, RejectsSelfLoop) {
  TaskGraph g;
  const NodeId a = g.add_task(conv("A"));
  EXPECT_THROW(g.add_ipr(a, a, 1_KiB), ContractViolation);
}

TEST(TaskGraphTest, RejectsInvalidEndpoints) {
  TaskGraph g;
  const NodeId a = g.add_task(conv("A"));
  EXPECT_THROW(g.add_ipr(a, NodeId{5}, 1_KiB), ContractViolation);
  EXPECT_THROW(g.add_ipr(NodeId{5}, a, 1_KiB), ContractViolation);
}

TEST(TaskGraphTest, RejectsNonPositiveWeights) {
  TaskGraph g;
  EXPECT_THROW(g.add_task(Task{"bad", TaskKind::kConvolution, TimeUnits{0}}),
               ContractViolation);
  const NodeId a = g.add_task(conv("A"));
  const NodeId b = g.add_task(conv("B"));
  EXPECT_THROW(g.add_ipr(a, b, Bytes{0}), ContractViolation);
}

TEST(TaskGraphTest, InvalidIdAccessThrows) {
  TaskGraph g;
  g.add_task(conv("A"));
  EXPECT_THROW(g.task(NodeId{1}), ContractViolation);
  EXPECT_THROW(g.ipr(EdgeId{0}), ContractViolation);
  EXPECT_THROW(g.out_edges(NodeId{9}), ContractViolation);
  EXPECT_THROW(g.in_edges(NodeId{9}), ContractViolation);
}

TEST(TaskGraphTest, Totals) {
  TaskGraph g;
  const NodeId a = g.add_task(conv("A", 2));
  const NodeId b = g.add_task(conv("B", 5));
  const NodeId c = g.add_task(conv("C", 1));
  g.add_ipr(a, b, 1_KiB);
  g.add_ipr(b, c, 3_KiB);
  EXPECT_EQ(g.total_work().value, 8);
  EXPECT_EQ(g.total_ipr_bytes(), 4_KiB);
  EXPECT_EQ(g.max_exec_time().value, 5);
}

TEST(TaskGraphTest, NodesAndEdgesEnumerateInOrder) {
  TaskGraph g;
  const NodeId a = g.add_task(conv("A"));
  const NodeId b = g.add_task(conv("B"));
  const NodeId c = g.add_task(conv("C"));
  g.add_ipr(a, b, 1_KiB);
  g.add_ipr(b, c, 1_KiB);
  const auto nodes = g.nodes();
  ASSERT_EQ(nodes.size(), 3U);
  EXPECT_EQ(nodes[0], a);
  EXPECT_EQ(nodes[2], c);
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 2U);
  EXPECT_EQ(edges[0].value, 0U);
  EXPECT_EQ(edges[1].value, 1U);
}

TEST(TaskGraphTest, ValidateRejectsEmptyGraph) {
  TaskGraph g;
  EXPECT_THROW(g.validate(), ContractViolation);
}

TEST(TaskGraphTest, ValidateRejectsCycle) {
  TaskGraph g;
  const NodeId a = g.add_task(conv("A"));
  const NodeId b = g.add_task(conv("B"));
  g.add_ipr(a, b, 1_KiB);
  g.add_ipr(b, a, 1_KiB);
  EXPECT_THROW(g.validate(), ContractViolation);
}

TEST(TaskGraphTest, ValidateAcceptsDag) {
  TaskGraph g;
  const NodeId a = g.add_task(conv("A"));
  const NodeId b = g.add_task(conv("B"));
  g.add_ipr(a, b, 1_KiB);
  EXPECT_NO_THROW(g.validate());
}

TEST(TaskKindTest, Names) {
  EXPECT_STREQ(to_string(TaskKind::kConvolution), "conv");
  EXPECT_STREQ(to_string(TaskKind::kPooling), "pool");
  EXPECT_STREQ(to_string(TaskKind::kFullyConnected), "fc");
  EXPECT_STREQ(to_string(TaskKind::kInput), "input");
  EXPECT_STREQ(to_string(TaskKind::kOther), "other");
}

}  // namespace
}  // namespace paraconv::graph
