#include "graph/paper_benchmarks.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"

namespace paraconv::graph {
namespace {

TEST(PaperBenchmarksTest, TwelveBenchmarksInTableOrder) {
  const auto& table = paper_benchmarks();
  ASSERT_EQ(table.size(), 12U);
  EXPECT_EQ(table.front().name, "cat");
  EXPECT_EQ(table.back().name, "protein");
}

struct ExpectedSize {
  const char* name;
  std::size_t vertices;
  std::size_t edges;
};

class PaperBenchmarkSizeTest : public testing::TestWithParam<ExpectedSize> {};

TEST_P(PaperBenchmarkSizeTest, TableEntryMatchesPaper) {
  const auto& b = paper_benchmark(GetParam().name);
  EXPECT_EQ(b.vertices, GetParam().vertices);
  EXPECT_EQ(b.edges, GetParam().edges);
}

TEST_P(PaperBenchmarkSizeTest, BuiltGraphMatchesEntry) {
  const auto& b = paper_benchmark(GetParam().name);
  const TaskGraph g = build_paper_benchmark(b);
  EXPECT_EQ(g.node_count(), GetParam().vertices);
  EXPECT_EQ(g.edge_count(), GetParam().edges);
  EXPECT_TRUE(is_acyclic(g));
  EXPECT_EQ(g.name(), GetParam().name);
}

INSTANTIATE_TEST_SUITE_P(
    AllTwelve, PaperBenchmarkSizeTest,
    testing::Values(ExpectedSize{"cat", 9, 21}, ExpectedSize{"car", 13, 28},
                    ExpectedSize{"flower", 21, 51},
                    ExpectedSize{"character-1", 46, 121},
                    ExpectedSize{"character-2", 52, 130},
                    ExpectedSize{"image-compress", 70, 178},
                    ExpectedSize{"stock-predict", 83, 218},
                    ExpectedSize{"string-matching", 102, 267},
                    ExpectedSize{"shortest-path", 191, 506},
                    ExpectedSize{"speech-1", 247, 652},
                    ExpectedSize{"speech-2", 369, 981},
                    ExpectedSize{"protein", 546, 1449}));

TEST(PaperBenchmarksTest, UnknownNameThrows) {
  EXPECT_THROW(paper_benchmark("alexnet"), ContractViolation);
}

TEST(PaperBenchmarksTest, SeedsAreDistinct) {
  const auto& table = paper_benchmarks();
  for (std::size_t i = 0; i < table.size(); ++i) {
    for (std::size_t j = i + 1; j < table.size(); ++j) {
      EXPECT_NE(table[i].seed, table[j].seed);
    }
  }
}

TEST(PaperBenchmarksTest, BuildIsDeterministic) {
  const auto& b = paper_benchmark("flower");
  const TaskGraph g1 = build_paper_benchmark(b);
  const TaskGraph g2 = build_paper_benchmark(b);
  ASSERT_EQ(g1.edge_count(), g2.edge_count());
  for (const EdgeId e : g1.edges()) {
    EXPECT_EQ(g1.ipr(e).src, g2.ipr(e).src);
    EXPECT_EQ(g1.ipr(e).dst, g2.ipr(e).dst);
    EXPECT_EQ(g1.ipr(e).size, g2.ipr(e).size);
  }
}

}  // namespace
}  // namespace paraconv::graph
