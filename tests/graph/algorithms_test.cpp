#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace paraconv::graph {
namespace {

Task conv(const std::string& name, std::int64_t exec) {
  return Task{name, TaskKind::kConvolution, TimeUnits{exec}};
}

/// Diamond: A -> {B, C} -> D with exec times 1, 2, 3, 4.
TaskGraph diamond() {
  TaskGraph g("diamond");
  const NodeId a = g.add_task(conv("A", 1));
  const NodeId b = g.add_task(conv("B", 2));
  const NodeId c = g.add_task(conv("C", 3));
  const NodeId d = g.add_task(conv("D", 4));
  g.add_ipr(a, b, 1_KiB);
  g.add_ipr(a, c, 1_KiB);
  g.add_ipr(b, d, 1_KiB);
  g.add_ipr(c, d, 1_KiB);
  return g;
}

TEST(TopologicalOrderTest, RespectsEdges) {
  const TaskGraph g = diamond();
  const auto order = topological_order(g);
  ASSERT_TRUE(order.has_value());
  ASSERT_EQ(order->size(), 4U);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < 4; ++i) pos[(*order)[i].value] = i;
  for (const EdgeId e : g.edges()) {
    EXPECT_LT(pos[g.ipr(e).src.value], pos[g.ipr(e).dst.value]);
  }
}

TEST(TopologicalOrderTest, DetectsCycle) {
  TaskGraph g;
  const NodeId a = g.add_task(conv("A", 1));
  const NodeId b = g.add_task(conv("B", 1));
  const NodeId c = g.add_task(conv("C", 1));
  g.add_ipr(a, b, 1_KiB);
  g.add_ipr(b, c, 1_KiB);
  g.add_ipr(c, a, 1_KiB);
  EXPECT_FALSE(topological_order(g).has_value());
  EXPECT_FALSE(is_acyclic(g));
}

TEST(SourcesSinksTest, Diamond) {
  const TaskGraph g = diamond();
  const auto src = sources(g);
  const auto snk = sinks(g);
  ASSERT_EQ(src.size(), 1U);
  EXPECT_EQ(src[0].value, 0U);
  ASSERT_EQ(snk.size(), 1U);
  EXPECT_EQ(snk[0].value, 3U);
}

TEST(CriticalPathTest, DiamondTakesLongerBranch) {
  // A(1) -> C(3) -> D(4) = 8.
  EXPECT_EQ(critical_path_length(diamond()).value, 8);
}

TEST(CriticalPathTest, SingleNode) {
  TaskGraph g;
  g.add_task(conv("solo", 7));
  EXPECT_EQ(critical_path_length(g).value, 7);
}

TEST(UpwardRankTest, DiamondValues) {
  const auto rank = upward_rank(diamond());
  ASSERT_EQ(rank.size(), 4U);
  EXPECT_EQ(rank[3].value, 4);  // D
  EXPECT_EQ(rank[1].value, 6);  // B -> D
  EXPECT_EQ(rank[2].value, 7);  // C -> D
  EXPECT_EQ(rank[0].value, 8);  // A -> C -> D
}

TEST(UpwardRankTest, ProducerAlwaysOutranksConsumer) {
  const TaskGraph g = diamond();
  const auto rank = upward_rank(g);
  for (const EdgeId e : g.edges()) {
    EXPECT_GT(rank[g.ipr(e).src.value], rank[g.ipr(e).dst.value]);
  }
}

TEST(LongestPathByEdgeWeightTest, UnitWeightsGiveDepth) {
  const TaskGraph g = diamond();
  const std::vector<int> weights(g.edge_count(), 1);
  const auto value = longest_path_by_edge_weight(g, weights);
  EXPECT_EQ(value[3], 0);  // sink
  EXPECT_EQ(value[1], 1);
  EXPECT_EQ(value[2], 1);
  EXPECT_EQ(value[0], 2);
}

TEST(LongestPathByEdgeWeightTest, ZeroWeightsGiveZero) {
  const TaskGraph g = diamond();
  const std::vector<int> weights(g.edge_count(), 0);
  const auto value = longest_path_by_edge_weight(g, weights);
  EXPECT_TRUE(std::all_of(value.begin(), value.end(),
                          [](int v) { return v == 0; }));
}

TEST(LongestPathByEdgeWeightTest, MixedWeights) {
  const TaskGraph g = diamond();
  // Edge order: A->B, A->C, B->D, C->D.
  const std::vector<int> weights{2, 0, 0, 1};
  const auto value = longest_path_by_edge_weight(g, weights);
  EXPECT_EQ(value[0], 2);  // max(A->B: 2+0, A->C: 0+1) = 2
  EXPECT_EQ(value[1], 0);
  EXPECT_EQ(value[2], 1);
}

TEST(LongestPathByEdgeWeightTest, WrongWeightCountThrows) {
  const TaskGraph g = diamond();
  EXPECT_THROW(longest_path_by_edge_weight(g, std::vector<int>{1}),
               ContractViolation);
}

TEST(DegreeStatsTest, Diamond) {
  const DegreeStats s = degree_stats(diamond());
  EXPECT_EQ(s.max_in, 2U);
  EXPECT_EQ(s.max_out, 2U);
  EXPECT_DOUBLE_EQ(s.avg_degree, 2.0);  // 8 endpoint incidences / 4 nodes
}

}  // namespace
}  // namespace paraconv::graph
