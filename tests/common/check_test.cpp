#include "common/check.hpp"

#include <gtest/gtest.h>

namespace paraconv {
namespace {

TEST(CheckTest, RequirePassesOnTrue) {
  EXPECT_NO_THROW(PARACONV_REQUIRE(1 + 1 == 2, "math works"));
}

TEST(CheckTest, RequireThrowsContractViolation) {
  EXPECT_THROW(PARACONV_REQUIRE(false, "must fail"), ContractViolation);
}

TEST(CheckTest, CheckThrowsContractViolation) {
  EXPECT_THROW(PARACONV_CHECK(false, "invariant broken"), ContractViolation);
}

TEST(CheckTest, MessageContainsContext) {
  try {
    PARACONV_REQUIRE(2 < 1, "two is not less than one");
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("precondition"), std::string::npos);
  }
}

TEST(CheckTest, InvariantKindInMessage) {
  try {
    PARACONV_CHECK(false, "state corrupt");
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("invariant"), std::string::npos);
  }
}

TEST(CheckTest, IsLogicError) {
  EXPECT_THROW(PARACONV_CHECK(false, "x"), std::logic_error);
}

}  // namespace
}  // namespace paraconv
