#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace paraconv {
namespace {

TEST(RunningStatsTest, MeanAndExtrema) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 6.0, 8.0}) s.add(x);
  EXPECT_EQ(s.count(), 4U);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
}

TEST(RunningStatsTest, SampleVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStatsTest, SingleObservation) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStatsTest, EmptySampleRejected) {
  const RunningStats s;
  EXPECT_THROW(s.mean(), ContractViolation);
  EXPECT_THROW(s.variance(), ContractViolation);
  EXPECT_THROW(s.min(), ContractViolation);
}

TEST(RunningStatsTest, NegativeValuesHandled) {
  RunningStats s;
  for (const double x : {-5.0, 0.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
}

TEST(PercentileTest, NearestRank) {
  const std::vector<double> sample{15, 20, 35, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(sample, 0), 15);
  EXPECT_DOUBLE_EQ(percentile(sample, 30), 20);
  EXPECT_DOUBLE_EQ(percentile(sample, 40), 20);
  EXPECT_DOUBLE_EQ(percentile(sample, 50), 35);
  EXPECT_DOUBLE_EQ(percentile(sample, 100), 50);
}

TEST(PercentileTest, UnsortedInputAccepted) {
  EXPECT_DOUBLE_EQ(percentile({9, 1, 5}, 50), 5);
}

// Nearest-rank means the smallest rank r with 100*r >= p*n — at tiny n
// every off-by-one is a whole different observation, so pin the exact
// element for the boundary cases.
TEST(PercentileTest, NearestRankAtSmallSampleCounts) {
  // p50 of two samples is the first (rank ceil(0.5*2) = 1), not the second.
  EXPECT_DOUBLE_EQ(percentile({10, 20}, 50), 10);
  EXPECT_DOUBLE_EQ(percentile({10, 20}, 90), 20);
  EXPECT_DOUBLE_EQ(percentile({42}, 50), 42);
  EXPECT_DOUBLE_EQ(percentile({42}, 100), 42);
  // p25 of {1,2,3}: rank ceil(0.75) = 1.
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3}, 25), 1);
}

// p/100 is not exact in binary: naive ceil(p/100.0 * n) lands one rank too
// high whenever the product rounds just above an integer (p7 of 100
// samples used to read the 8th element; p14 of 50 the 8th instead of the
// 7th). The rank must be compared in the scaled domain.
TEST(PercentileTest, NearestRankIsImmuneToBinaryRoundingOfPOver100) {
  std::vector<double> hundred;
  for (int i = 1; i <= 100; ++i) hundred.push_back(i);
  EXPECT_DOUBLE_EQ(percentile(hundred, 7), 7);    // not 8
  EXPECT_DOUBLE_EQ(percentile(hundred, 1), 1);
  EXPECT_DOUBLE_EQ(percentile(hundred, 99), 99);
  EXPECT_DOUBLE_EQ(percentile(hundred, 100), 100);

  std::vector<double> fifty;
  for (int i = 1; i <= 50; ++i) fifty.push_back(i);
  EXPECT_DOUBLE_EQ(percentile(fifty, 14), 7);     // not 8
  EXPECT_DOUBLE_EQ(percentile(fifty, 2), 1);
}

TEST(PercentileTest, InvalidArgumentsRejected) {
  EXPECT_THROW(percentile({}, 50), ContractViolation);
  EXPECT_THROW(percentile({1.0}, -1), ContractViolation);
  EXPECT_THROW(percentile({1.0}, 101), ContractViolation);
}

}  // namespace
}  // namespace paraconv
