#include "common/units.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace paraconv {
namespace {

TEST(TimeUnitsTest, ArithmeticAndComparison) {
  const TimeUnits a{5};
  const TimeUnits b{3};
  EXPECT_EQ((a + b).value, 8);
  EXPECT_EQ((a - b).value, 2);
  EXPECT_EQ((a * 4).value, 20);
  EXPECT_LT(b, a);
  EXPECT_GE(a, a);
  TimeUnits c{1};
  c += TimeUnits{2};
  EXPECT_EQ(c.value, 3);
}

TEST(TimeUnitsTest, DefaultIsZero) { EXPECT_EQ(TimeUnits{}.value, 0); }

TEST(TimeUnitsTest, StreamFormat) {
  std::ostringstream os;
  os << TimeUnits{42};
  EXPECT_EQ(os.str(), "42tu");
}

TEST(BytesTest, LiteralsProduceExpectedValues) {
  EXPECT_EQ((4_B).value, 4);
  EXPECT_EQ((2_KiB).value, 2048);
  EXPECT_EQ((3_MiB).value, 3 * 1024 * 1024);
}

TEST(BytesTest, Arithmetic) {
  Bytes b = 1_KiB;
  b += 1_KiB;
  EXPECT_EQ(b, 2_KiB);
  EXPECT_EQ((2_KiB - 1_KiB), 1_KiB);
  EXPECT_LT(1_KiB, 1_MiB);
}

TEST(PicojoulesTest, AccumulatesAndScales) {
  Picojoules e{1.5};
  e += Picojoules{0.5};
  EXPECT_DOUBLE_EQ(e.value, 2.0);
  EXPECT_DOUBLE_EQ((e * 3.0).value, 6.0);
  EXPECT_DOUBLE_EQ((Picojoules{1.0} + Picojoules{2.0}).value, 3.0);
}

struct CeilDivCase {
  std::int64_t a;
  std::int64_t b;
  std::int64_t expected;
};

class CeilDivTest : public testing::TestWithParam<CeilDivCase> {};

TEST_P(CeilDivTest, MatchesExpectation) {
  const CeilDivCase& c = GetParam();
  EXPECT_EQ(ceil_div(c.a, c.b), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Values, CeilDivTest,
    testing::Values(CeilDivCase{0, 5, 0}, CeilDivCase{1, 5, 1},
                    CeilDivCase{5, 5, 1}, CeilDivCase{6, 5, 2},
                    CeilDivCase{10, 5, 2}, CeilDivCase{11, 5, 3},
                    CeilDivCase{1, 1, 1}, CeilDivCase{999, 1000, 1},
                    CeilDivCase{1000, 1000, 1}, CeilDivCase{1001, 1000, 2}));

TEST(FormatBytesTest, HumanReadable) {
  EXPECT_EQ(format_bytes(512_B), "512 B");
  EXPECT_EQ(format_bytes(1_KiB), "1.0 KiB");
  EXPECT_EQ(format_bytes(Bytes{1536}), "1.5 KiB");
  EXPECT_EQ(format_bytes(2_MiB), "2.0 MiB");
  EXPECT_EQ(format_bytes(Bytes{0}), "0 B");
}

}  // namespace
}  // namespace paraconv
