#include "common/fsio.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "common/check.hpp"

namespace paraconv {
namespace {

TEST(FsioTest, SyncsTheParentOfAFreshlyCreatedFile) {
  const std::string path = testing::TempDir() + "fsio_probe.txt";
  std::ofstream(path) << "payload";
  EXPECT_NO_THROW(fsync_parent_directory(path));
}

TEST(FsioTest, BareFileNamesSyncTheCurrentDirectory) {
  EXPECT_NO_THROW(fsync_parent_directory("bare-name-no-directory"));
}

TEST(FsioTest, RejectsAnEmptyPath) {
  EXPECT_THROW(fsync_parent_directory(""), ContractViolation);
}

#if defined(__unix__) || defined(__APPLE__)
// The durability promise must fail loudly when it cannot be kept.
TEST(FsioTest, ThrowsWhenTheParentDirectoryDoesNotExist) {
  EXPECT_THROW(fsync_parent_directory(testing::TempDir() +
                                      "no-such-dir-xyzzy/file.txt"),
               ContractViolation);
}
#endif

}  // namespace
}  // namespace paraconv
