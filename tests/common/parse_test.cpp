#include "common/parse.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace paraconv {
namespace {

TEST(ParseInt64Test, AcceptsPlainDecimals) {
  EXPECT_EQ(parse_int64("0"), 0);
  EXPECT_EQ(parse_int64("42"), 42);
  EXPECT_EQ(parse_int64("-3"), -3);
  EXPECT_EQ(parse_int64("9223372036854775807"),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(parse_int64("-9223372036854775808"),
            std::numeric_limits<std::int64_t>::min());
}

TEST(ParseInt64Test, RejectsEmptyJunkAndPartialTokens) {
  EXPECT_EQ(parse_int64(""), std::nullopt);
  EXPECT_EQ(parse_int64(" 1"), std::nullopt);
  EXPECT_EQ(parse_int64("1 "), std::nullopt);
  EXPECT_EQ(parse_int64("1x"), std::nullopt);
  EXPECT_EQ(parse_int64("x1"), std::nullopt);
  EXPECT_EQ(parse_int64("-"), std::nullopt);
  EXPECT_EQ(parse_int64("+1"), std::nullopt);
  EXPECT_EQ(parse_int64("0x10"), std::nullopt);
  EXPECT_EQ(parse_int64("1.5"), std::nullopt);
}

TEST(ParseInt64Test, RejectsOverflowInsteadOfThrowing) {
  // The regression that motivated this helper: std::stol threw an uncaught
  // std::out_of_range for a 20-digit --pe-counts token.
  EXPECT_EQ(parse_int64("99999999999999999999"), std::nullopt);
  EXPECT_EQ(parse_int64("9223372036854775808"), std::nullopt);
  EXPECT_EQ(parse_int64("-9223372036854775809"), std::nullopt);
}

TEST(ParsePositiveIntListTest, AcceptsCsvOfPositiveInts) {
  std::string error;
  const auto one = parse_positive_int_list("16", &error);
  ASSERT_TRUE(one.has_value());
  EXPECT_EQ(*one, (std::vector<int>{16}));

  const auto many = parse_positive_int_list("16,32,64", &error);
  ASSERT_TRUE(many.has_value());
  EXPECT_EQ(*many, (std::vector<int>{16, 32, 64}));
}

TEST(ParsePositiveIntListTest, RejectsZeroWithDiagnostic) {
  // "0" passed the old digits-only pre-check and then produced a zero-PE
  // sweep; it must now fail up front with the token named.
  std::string error;
  EXPECT_EQ(parse_positive_int_list("0", &error), std::nullopt);
  EXPECT_NE(error.find("'0'"), std::string::npos);

  EXPECT_EQ(parse_positive_int_list("16,0,32", &error), std::nullopt);
  EXPECT_NE(error.find("'0'"), std::string::npos);
}

TEST(ParsePositiveIntListTest, RejectsOverflowNegativesAndJunk) {
  std::string error;
  EXPECT_EQ(parse_positive_int_list("99999999999999999999", &error),
            std::nullopt);
  EXPECT_NE(error.find("99999999999999999999"), std::string::npos);

  EXPECT_EQ(parse_positive_int_list("-3", &error), std::nullopt);
  EXPECT_EQ(parse_positive_int_list("16,x", &error), std::nullopt);
  EXPECT_EQ(parse_positive_int_list("1x", &error), std::nullopt);
  // Beyond int but within int64: still out of the [1, INT_MAX] range.
  EXPECT_EQ(parse_positive_int_list("4294967296", &error), std::nullopt);
}

TEST(ParsePositiveIntListTest, RejectsEmptyInputAndEmptyTokens) {
  std::string error;
  EXPECT_EQ(parse_positive_int_list("", &error), std::nullopt);
  EXPECT_EQ(parse_positive_int_list(",", &error), std::nullopt);
  EXPECT_EQ(parse_positive_int_list("16,,32", &error), std::nullopt);
  EXPECT_EQ(parse_positive_int_list("16,", &error), std::nullopt);
}

TEST(ParsePositiveIntListTest, NullErrorPointerIsAllowed) {
  EXPECT_EQ(parse_positive_int_list("0", nullptr), std::nullopt);
  ASSERT_TRUE(parse_positive_int_list("8", nullptr).has_value());
}

}  // namespace
}  // namespace paraconv
