#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"

namespace paraconv {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t;
  t.set_header({"name", "v"});
  t.add_row({"a", "100"});
  t.add_row({"longer", "1"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name   | v   |"), std::string::npos);
  EXPECT_NE(out.find("| a      | 100 |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 1   |"), std::string::npos);
}

TEST(TablePrinterTest, TitlePrintedFirst) {
  TablePrinter t{"My Table"};
  t.set_header({"x"});
  t.add_row({"1"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str().rfind("My Table\n", 0), 0U);
}

TEST(TablePrinterTest, RowWidthMismatchThrows) {
  TablePrinter t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter t;
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(TablePrinterTest, RuleInsertsSeparator) {
  TablePrinter t;
  t.set_header({"a"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"avg"});
  std::ostringstream os;
  t.print(os);
  // header rule + top + bottom + the explicit one = 4 horizontal rules.
  std::size_t rules = 0;
  std::istringstream in(os.str());
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 4U);
}

TEST(TablePrinterTest, RowCount) {
  TablePrinter t;
  t.set_header({"a"});
  EXPECT_EQ(t.row_count(), 0U);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2U);
}

}  // namespace
}  // namespace paraconv
