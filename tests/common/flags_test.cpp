#include "common/flags.hpp"

#include <gtest/gtest.h>

namespace paraconv {
namespace {

FlagParser make_parser() {
  FlagParser flags;
  flags.add_string("name", "default", "a string flag");
  flags.add_int("count", 7, "an int flag");
  flags.add_bool("verbose", false, "a bool flag");
  return flags;
}

TEST(FlagParserTest, DefaultsApply) {
  FlagParser flags = make_parser();
  std::string error;
  ASSERT_TRUE(flags.parse({}, &error)) << error;
  EXPECT_EQ(flags.get_string("name"), "default");
  EXPECT_EQ(flags.get_int("count"), 7);
  EXPECT_FALSE(flags.get_bool("verbose"));
}

TEST(FlagParserTest, SpaceSeparatedValues) {
  FlagParser flags = make_parser();
  std::string error;
  ASSERT_TRUE(flags.parse({"--name", "abc", "--count", "42"}, &error));
  EXPECT_EQ(flags.get_string("name"), "abc");
  EXPECT_EQ(flags.get_int("count"), 42);
}

TEST(FlagParserTest, EqualsSeparatedValues) {
  FlagParser flags = make_parser();
  std::string error;
  ASSERT_TRUE(flags.parse({"--name=xyz", "--count=-3"}, &error));
  EXPECT_EQ(flags.get_string("name"), "xyz");
  EXPECT_EQ(flags.get_int("count"), -3);
}

TEST(FlagParserTest, BareBoolSetsTrue) {
  FlagParser flags = make_parser();
  std::string error;
  ASSERT_TRUE(flags.parse({"--verbose"}, &error));
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(FlagParserTest, ExplicitBoolValues) {
  FlagParser flags = make_parser();
  std::string error;
  ASSERT_TRUE(flags.parse({"--verbose=true"}, &error));
  EXPECT_TRUE(flags.get_bool("verbose"));

  FlagParser flags2 = make_parser();
  ASSERT_TRUE(flags2.parse({"--verbose=false"}, &error));
  EXPECT_FALSE(flags2.get_bool("verbose"));
}

TEST(FlagParserTest, PositionalArgumentsCollected) {
  FlagParser flags = make_parser();
  std::string error;
  ASSERT_TRUE(flags.parse({"run", "--count", "3", "extra"}, &error));
  EXPECT_EQ(flags.positional(), (std::vector<std::string>{"run", "extra"}));
}

TEST(FlagParserTest, LastValueWins) {
  FlagParser flags = make_parser();
  std::string error;
  ASSERT_TRUE(flags.parse({"--count", "1", "--count", "2"}, &error));
  EXPECT_EQ(flags.get_int("count"), 2);
}

TEST(FlagParserTest, UnknownFlagRejected) {
  FlagParser flags = make_parser();
  std::string error;
  EXPECT_FALSE(flags.parse({"--typo"}, &error));
  EXPECT_NE(error.find("unknown flag"), std::string::npos);
}

TEST(FlagParserTest, MalformedIntRejected) {
  FlagParser flags = make_parser();
  std::string error;
  EXPECT_FALSE(flags.parse({"--count", "abc"}, &error));
  EXPECT_NE(error.find("integer"), std::string::npos);
  FlagParser flags2 = make_parser();
  EXPECT_FALSE(flags2.parse({"--count", "12x"}, &error));
}

TEST(FlagParserTest, MissingValueRejected) {
  FlagParser flags = make_parser();
  std::string error;
  EXPECT_FALSE(flags.parse({"--count"}, &error));
  EXPECT_NE(error.find("expects a value"), std::string::npos);
}

TEST(FlagParserTest, MalformedBoolRejected) {
  FlagParser flags = make_parser();
  std::string error;
  EXPECT_FALSE(flags.parse({"--verbose=maybe"}, &error));
}

TEST(FlagParserTest, TypeMismatchAndUndeclaredThrow) {
  FlagParser flags = make_parser();
  std::string error;
  ASSERT_TRUE(flags.parse({}, &error));
  EXPECT_THROW(flags.get_int("name"), ContractViolation);
  EXPECT_THROW(flags.get_string("nope"), ContractViolation);
}

TEST(FlagParserTest, DuplicateDeclarationThrows) {
  FlagParser flags;
  flags.add_int("x", 1, "doc");
  EXPECT_THROW(flags.add_string("x", "", "doc"), ContractViolation);
}

TEST(FlagParserTest, UsageListsAllFlags) {
  const FlagParser flags = make_parser();
  const std::string usage = flags.usage();
  EXPECT_NE(usage.find("--name"), std::string::npos);
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("a string flag"), std::string::npos);
}

}  // namespace
}  // namespace paraconv
