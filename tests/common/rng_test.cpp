#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace paraconv {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 24);
}

TEST(RngTest, UniformRealInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, UniformIntRequiresOrderedBounds) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(5, 4), ContractViolation);
}

TEST(RngTest, SingletonRangeAlwaysReturnsValue) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

struct RangeCase {
  std::int64_t lo;
  std::int64_t hi;
};

class UniformIntRangeTest : public testing::TestWithParam<RangeCase> {};

TEST_P(UniformIntRangeTest, StaysInBoundsAndCoversRange) {
  const auto [lo, hi] = GetParam();
  Rng rng(static_cast<std::uint64_t>(lo * 31 + hi));
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
    seen.insert(v);
  }
  // For small ranges the generator should hit every value.
  if (hi - lo < 16) {
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(hi - lo + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, UniformIntRangeTest,
                         testing::Values(RangeCase{0, 1}, RangeCase{-5, 5},
                                         RangeCase{0, 9}, RangeCase{100, 107},
                                         RangeCase{-1000, 1000},
                                         RangeCase{0, 1'000'000}));

TEST(RngTest, UniformIntMeanIsCentered) {
  Rng rng(99);
  double sum = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(rng.uniform_int(0, 100));
  }
  const double mean = sum / kDraws;
  EXPECT_NEAR(mean, 50.0, 1.0);
}

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace paraconv
