#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace paraconv {
namespace {

TEST(JoinTest, BasicAndEdgeCases) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"", ""}, "-"), "-");
}

TEST(SplitTest, BasicAndEdgeCases) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(SplitJoinTest, RoundTrips) {
  const std::vector<std::string> parts{"alpha", "beta", "", "gamma"};
  EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(FormatFixedTest, Precision) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(3.145, 2), "3.15");  // round-half-away via printf
  EXPECT_EQ(format_fixed(-1.5, 0), "-2");
  EXPECT_EQ(format_fixed(0.0, 3), "0.000");
}

TEST(FormatFixedTest, ValuesWiderThanTheStackBufferAreNotTruncated) {
  // 1e300 needs 301 integer digits + '.' + 3 decimals = 305 characters,
  // far past the 64-byte fast path.
  const std::string out = format_fixed(1e300, 3);
  ASSERT_EQ(out.size(), 305U);
  EXPECT_EQ(out.front(), '1');
  EXPECT_EQ(out.find('.'), 301U);
  EXPECT_EQ(out.substr(301), ".000");

  const std::string negative = format_fixed(-1e300, 3);
  ASSERT_EQ(negative.size(), 306U);
  EXPECT_EQ(negative.front(), '-');
}

TEST(PadTest, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");  // no truncation
  EXPECT_EQ(pad_right("abcd", 2), "abcd");
  EXPECT_EQ(pad_left("", 3), "   ");
}

}  // namespace
}  // namespace paraconv
